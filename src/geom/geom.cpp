#include "geom/geom.h"

#include <algorithm>
#include <cmath>

namespace quicbench::geom {

double cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

double distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

Polygon convex_hull(std::vector<Point> pts) {
  std::sort(pts.begin(), pts.end(), [](const Point& a, const Point& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n < 3) return pts;

  Polygon hull(2 * n);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  // Upper hull.
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {
    while (k >= t && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);  // last point equals the first
  return hull;
}

double signed_area(const Polygon& poly) {
  if (poly.size() < 3) return 0.0;
  double area = 0.0;
  for (std::size_t i = 0, n = poly.size(); i < n; ++i) {
    const Point& a = poly[i];
    const Point& b = poly[(i + 1) % n];
    area += a.x * b.y - b.x * a.y;
  }
  return area / 2.0;
}

double polygon_area(const Polygon& poly) { return std::abs(signed_area(poly)); }

Point polygon_centroid(const Polygon& poly) {
  if (poly.empty()) return {};
  if (poly.size() < 3) {
    Point c;
    for (const Point& p : poly) {
      c.x += p.x;
      c.y += p.y;
    }
    c.x /= static_cast<double>(poly.size());
    c.y /= static_cast<double>(poly.size());
    return c;
  }
  const double a = signed_area(poly);
  if (std::abs(a) < 1e-30) return points_centroid(poly);
  Point c;
  for (std::size_t i = 0, n = poly.size(); i < n; ++i) {
    const Point& p = poly[i];
    const Point& q = poly[(i + 1) % n];
    const double w = p.x * q.y - q.x * p.y;
    c.x += (p.x + q.x) * w;
    c.y += (p.y + q.y) * w;
  }
  c.x /= 6.0 * a;
  c.y /= 6.0 * a;
  return c;
}

Point points_centroid(std::span<const Point> points) {
  Point c;
  if (points.empty()) return c;
  for (const Point& p : points) {
    c.x += p.x;
    c.y += p.y;
  }
  c.x /= static_cast<double>(points.size());
  c.y /= static_cast<double>(points.size());
  return c;
}

bool point_in_convex(const Polygon& poly, const Point& p, double eps) {
  if (poly.size() < 3) return false;
  for (std::size_t i = 0, n = poly.size(); i < n; ++i) {
    if (cross(poly[i], poly[(i + 1) % n], p) < -eps) return false;
  }
  return true;
}

PreparedConvex::PreparedConvex(const Polygon& poly) {
  // The bounding box spans all vertices even when the polygon is
  // degenerate (mirrors the old BoxedPe behaviour); edges_ stays empty
  // in that case so contains() is false either way.
  for (const Point& v : poly) {
    min_x_ = std::min(min_x_, v.x);
    max_x_ = std::max(max_x_, v.x);
    min_y_ = std::min(min_y_, v.y);
    max_y_ = std::max(max_y_, v.y);
  }
  const std::size_t n = poly.size();
  if (n < 3) return;
  ax_.reserve(n);
  ay_.reserve(n);
  ex_.reserve(n);
  ey_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = poly[i];
    const Point& b = poly[(i + 1) % n];
    ax_.push_back(a.x);
    ay_.push_back(a.y);
    ex_.push_back(b.x - a.x);
    ey_.push_back(b.y - a.y);
  }
}

namespace {

// Reusable lane-compaction scratch for the batch containment paths.
// Thread-local: the sweep runner calls these from every worker.
struct MaskScratch {
  std::vector<std::uint32_t> idx;
  std::vector<double> cx, cy;
  std::vector<std::uint8_t> m;
};

MaskScratch& mask_scratch() {
  thread_local MaskScratch s;
  return s;
}

// Edges per pass between compactions: an outside point is usually
// rejected by its first failing edge, so small blocks keep the total
// edge work near the scalar early-exit's while each pass stays a
// vectorizable contiguous loop.
constexpr std::size_t kEdgeBlock = 4;

} // namespace

void PreparedConvex::mask_and_contains(const double* px, const double* py,
                                       std::size_t n, std::uint8_t* mask,
                                       double eps) const {
  const std::size_t m = ax_.size();
  if (m == 0) {
    for (std::size_t i = 0; i < n; ++i) mask[i] = 0;
    return;
  }
  if (m <= kEdgeBlock || n < 16) {
    // Few edges or a tiny cloud: compaction overhead exceeds the work
    // it can skip; run the plain passes over every lane.
    for (std::size_t e = 0; e < m; ++e) {
      util::simd::mask_halfplane(px, py, n, ax_[e], ay_[e], ex_[e], ey_[e],
                                 eps, mask);
    }
    return;
  }
  MaskScratch& s = mask_scratch();
  s.idx.resize(n);
  s.cx.resize(n);
  s.cy.resize(n);
  std::size_t live = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i] != 0) {
      s.idx[live] = static_cast<std::uint32_t>(i);
      s.cx[live] = px[i];
      s.cy[live] = py[i];
      ++live;
    }
  }
  for (std::size_t e0 = 0; e0 < m && live != 0; e0 += kEdgeBlock) {
    const std::size_t e1 = std::min(e0 + kEdgeBlock, m);
    s.m.assign(live, 1);
    for (std::size_t e = e0; e < e1; ++e) {
      util::simd::mask_halfplane(s.cx.data(), s.cy.data(), live, ax_[e],
                                 ay_[e], ex_[e], ey_[e], eps, s.m.data());
    }
    std::size_t w = 0;
    for (std::size_t j = 0; j < live; ++j) {
      if (s.m[j] != 0) {
        s.idx[w] = s.idx[j];
        s.cx[w] = s.cx[j];
        s.cy[w] = s.cy[j];
        ++w;
      } else {
        mask[s.idx[j]] = 0;
      }
    }
    live = w;
  }
  // Lanes still live passed every edge; their mask entries are already 1.
}

std::size_t count_in_any(std::span<const PreparedConvex> hulls,
                         std::span<const Point> pts, double eps) {
  const std::size_t n = pts.size();
  if (n == 0 || hulls.empty()) return 0;
  // Cross-hull compaction: each hull only tests the points no earlier
  // hull accepted, mirroring the scalar any_of loop's first-hit exit —
  // total work does not scale with the hull count for inside points.
  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = pts[i].x;
    ys[i] = pts[i].y;
  }
  std::vector<std::uint8_t> m;
  std::size_t accepted = 0;
  std::size_t live = n;
  for (const PreparedConvex& h : hulls) {
    if (live == 0) break;
    m.assign(live, 1);
    h.mask_and_contains(xs.data(), ys.data(), live, m.data(), eps);
    std::size_t w = 0;
    for (std::size_t j = 0; j < live; ++j) {
      if (m[j] != 0) {
        ++accepted;
      } else {
        xs[w] = xs[j];
        ys[w] = ys[j];
        ++w;
      }
    }
    live = w;
  }
  return accepted;
}

namespace {

// Intersection of segment (a,b) with the infinite line through (c,d).
Point line_intersection(const Point& a, const Point& b, const Point& c,
                        const Point& d) {
  const double a1 = b.y - a.y;
  const double b1 = a.x - b.x;
  const double c1 = a1 * a.x + b1 * a.y;
  const double a2 = d.y - c.y;
  const double b2 = c.x - d.x;
  const double c2 = a2 * c.x + b2 * c.y;
  const double det = a1 * b2 - a2 * b1;
  if (std::abs(det) < 1e-30) return a;  // parallel: degenerate, return a
  return {(b2 * c1 - b1 * c2) / det, (a1 * c2 - a2 * c1) / det};
}

} // namespace

Polygon clip_convex(const Polygon& subject, const Polygon& clip) {
  if (subject.size() < 3 || clip.size() < 3) return {};
  Polygon output = subject;
  Polygon input;  // ping-pong scratch: buffer capacity survives the swap
  for (std::size_t i = 0, n = clip.size(); i < n && !output.empty(); ++i) {
    const Point& ca = clip[i];
    const Point& cb = clip[(i + 1) % n];
    input.swap(output);
    output.clear();
    const std::size_t m = input.size();
    // Each vertex's side-of-edge cross product is needed twice (as `cur`
    // and as the next vertex's `prev`); carry it instead of recomputing.
    const Point* prev = &input[m - 1];
    double prev_cr = cross(ca, cb, *prev);
    for (std::size_t j = 0; j < m; ++j) {
      const Point& cur = input[j];
      const double cur_cr = cross(ca, cb, cur);
      const bool cur_in = cur_cr >= 0;
      const bool prev_in = prev_cr >= 0;
      if (cur_in) {
        if (!prev_in) output.push_back(line_intersection(*prev, cur, ca, cb));
        output.push_back(cur);
      } else if (prev_in) {
        output.push_back(line_intersection(*prev, cur, ca, cb));
      }
      prev = &cur;
      prev_cr = cur_cr;
    }
  }
  if (output.size() < 3 || polygon_area(output) < 1e-12) return {};
  return output;
}

Polygon translate(const Polygon& poly, double dx, double dy) {
  Polygon out = poly;
  for (Point& p : out) {
    p.x += dx;
    p.y += dy;
  }
  return out;
}

Polygon intersect_all(std::span<const Polygon> polys) {
  if (polys.empty()) return {};
  Polygon acc = polys.front();
  for (std::size_t i = 1; i < polys.size(); ++i) {
    acc = clip_convex(acc, polys[i]);
    if (acc.empty()) return {};
  }
  return acc;
}

} // namespace quicbench::geom
