#pragma once
// Bottleneck link: a droptail FIFO buffer feeding a serializing
// transmitter with fixed rate and propagation delay. This is the emulated
// equivalent of the paper's tc/Mahimahi bottleneck.
//
// Implementation note: per-packet state lives in internal queues and the
// element schedules only small self-referencing callbacks, so the event
// heap never heap-allocates per packet (this path runs millions of times
// per experiment).

#include <map>
#include <string>
#include <utility>

#include "netsim/event.h"
#include "netsim/packet.h"
#include "util/fifo.h"
#include "util/inline_fn.h"
#include "util/units.h"

namespace quicbench::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace quicbench::obs

namespace quicbench::netsim {

struct LinkStats {
  std::int64_t packets_in = 0;
  std::int64_t packets_out = 0;
  std::int64_t packets_dropped = 0;
  Bytes bytes_out = 0;
  Bytes max_queue_bytes = 0;
  // Propagation deliveries absorbed into a prior same-tick timer fire
  // (see set_batch_same_tick_delivery); each one saves a timer event.
  std::int64_t same_tick_batched = 0;
};

class Link : public PacketSink {
 public:
  // `buffer_bytes` bounds the queued-but-not-yet-transmitting backlog
  // (droptail). The packet being serialized does not count against it.
  Link(Simulator& sim, Rate bandwidth, Time prop_delay, Bytes buffer_bytes,
       PacketSink* dst);

  void deliver(Packet p) override;

  Bytes queued_bytes() const { return queued_bytes_; }
  const LinkStats& stats() const { return stats_; }
  Rate bandwidth() const { return bandwidth_; }
  Time prop_delay() const { return prop_delay_; }
  Bytes buffer_bytes() const { return buffer_bytes_; }

  // Invoked on every droptail drop (after stats are updated). Used by
  // tests and by the trace module to log loss events. InlineFn keeps the
  // per-drop call allocation-free (the hot path runs millions of times).
  using DropCallback = util::InlineFn<void(const Packet&)>;
  void set_drop_callback(DropCallback cb) { drop_cb_ = std::move(cb); }

  // Packets queued or serializing, i.e. accepted but not yet counted in
  // stats().packets_out — the conservation term in
  //   packets_in == packets_out + packets_dropped + packets_resident()
  // which holds at every instant. (Packets propagating after
  // serialization are already in packets_out.)
  std::int64_t packets_resident() const {
    return static_cast<std::int64_t>(queue_.size()) + (transmitting_ ? 1 : 0);
  }

  // Flight-recorder instruments under `<prefix>.`: drops split by cause
  // (data flows vs cross traffic) and a live queue-depth gauge. Attaching
  // observes only — it never changes link behaviour.
  void attach_metrics(obs::MetricsRegistry& reg, const std::string& prefix);

  // Opt-in same-tick delivery batching: when the propagation timer fires
  // and further packets in `prop_` are also due now, deliver the whole
  // due run inline from the same fire instead of re-arming a timer per
  // packet. The drain is gated on the engine's has_pending_event_at_now
  // probe at entry: with no foreign event pending at this tick, the
  // unbatched path could only interleave events spawned by the drained
  // deliveries themselves between the per-packet fires. Every in-tree
  // delivery chain routes those through elements that preserve the
  // equivalence — synchronous pass-throughs (demux, duplication), stages
  // that defer through strictly positive delays (ack paths, reorder
  // flush windows), and the delay-0 forward-tail DelayLine, whose single
  // release event coalesces this tick's arrivals either way — so every
  // per-component delivery order (the only cross-world observable) is
  // unchanged and only timer-event counts shrink. With a foreign event
  // pending the fire falls back to the byte-identical unbatched path.
  // Off by default; when off, event counts are exactly the historical
  // ones.
  void set_batch_same_tick_delivery(bool on) { batch_same_tick_ = on; }

 private:
  void start_transmission();
  void on_transmit_done();
  void on_prop_deliver();

  Simulator& sim_;
  Rate bandwidth_;
  Time prop_delay_;
  Bytes buffer_bytes_;
  PacketSink* dst_;

  util::FifoVec<Packet> queue_;
  Bytes queued_bytes_ = 0;
  bool transmitting_ = false;
  Packet tx_packet_;

  // Packets in flight on the wire: FIFO with constant delay, so arrival
  // order equals completion order; one timer suffices.
  util::FifoVec<std::pair<Time, Packet>> prop_;
  Timer tx_timer_;
  Timer prop_timer_;
  bool batch_same_tick_ = false;

  LinkStats stats_;
  DropCallback drop_cb_;
  // Registry-owned instruments (see attach_metrics); null when unattached.
  obs::Counter* m_drops_data_ = nullptr;
  obs::Counter* m_drops_cross_ = nullptr;
  obs::Gauge* m_queue_bytes_ = nullptr;
};

// Pure propagation element with no bandwidth constraint: used for the
// reverse (ACK) path and access links. Optional per-packet jitter models a
// noisy Internet path; order is preserved unless `allow_reorder`.
//
// Same-tick deliveries are always batched here: one release fire drains
// every entry due at the current tick (see on_release), so a burst of
// same-tick arrivals costs one timer event, not one per packet.
class DelayLine : public PacketSink {
 public:
  DelayLine(Simulator& sim, Time delay, PacketSink* dst)
      : sim_(sim), delay_(delay), dst_(dst), release_timer_(sim) {
    release_timer_.set([this] { on_release(); });
  }

  // Uniform jitter in [0, jitter]. With allow_reorder=false, release times
  // are made monotonic so packets cannot overtake each other. The sampler
  // is an InlineFn: a per-packet draw must not heap-allocate.
  using JitterFn = util::InlineFn<double()>;
  void set_jitter(Time jitter, JitterFn uniform01,
                  bool allow_reorder = false) {
    assert(fifo_.empty() && pending_.empty() &&
           "set_jitter() with packets in flight");
    jitter_ = jitter;
    uniform01_ = std::move(uniform01);
    allow_reorder_ = allow_reorder;
  }

  void deliver(Packet p) override;

  Time delay() const { return delay_; }

  // Packets currently traversing the line.
  std::int64_t packets_resident() const {
    return static_cast<std::int64_t>(fifo_.size() + pending_.size());
  }

 private:
  void on_release();

  Simulator& sim_;
  Time delay_;
  PacketSink* dst_;
  Time jitter_ = 0;
  JitterFn uniform01_;
  bool allow_reorder_ = false;
  Time last_release_ = 0;

  // Pending packets. Without reordering, release times are monotonic, so
  // a plain FIFO suffices (no per-packet node allocations); the multimap
  // is only used when allow_reorder lets packets overtake each other.
  util::FifoVec<std::pair<Time, Packet>> fifo_;
  std::multimap<Time, Packet> pending_;
  Timer release_timer_;
};

} // namespace quicbench::netsim
