#include "netsim/impairment.h"

#include <sstream>
#include <stdexcept>

#include "obs/attrib.h"
#include "obs/metrics.h"

namespace quicbench::netsim {

void ImpairmentConfig::validate() const {
  const auto fail = [](const std::string& msg) {
    throw std::invalid_argument("ImpairmentConfig: " + msg);
  };
  const auto check_prob = [&fail](double p, const char* name) {
    if (p < 0 || p > 1) {
      fail(std::string(name) + " must be in [0, 1] (got " +
           std::to_string(p) + ")");
    }
  };
  check_prob(loss_rate, "loss_rate");
  check_prob(ge_loss_good, "ge_loss_good");
  check_prob(ge_loss_bad, "ge_loss_bad");
  check_prob(ge_p_good_to_bad, "ge_p_good_to_bad");
  check_prob(ge_p_bad_to_good, "ge_p_bad_to_good");
  check_prob(reorder_rate, "reorder_rate");
  check_prob(duplicate_rate, "duplicate_rate");
  check_prob(ack_loss_rate, "ack_loss_rate");
  if (ge_p_good_to_bad > 0 && ge_p_bad_to_good <= 0) {
    fail("ge_p_bad_to_good must be positive when bursts are enabled; a "
         "bad state that never recovers is loss_rate=1 in disguise");
  }
  if (reorder_rate > 0 && reorder_gap < 1) {
    fail("reorder_gap must be >= 1 when reorder_rate > 0 (got " +
         std::to_string(reorder_gap) + ")");
  }
  if (reorder_rate > 0 && reorder_flush <= 0) {
    fail("reorder_flush must be positive when reorder_rate > 0; held "
         "packets need a release deadline on idle paths");
  }
  if (rtt_step_delta < 0) {
    fail("rtt_step_delta must be non-negative (a step down would reorder "
         "packets in flight)");
  }
  if (rtt_step_at < 0) {
    fail("rtt_step_at must be non-negative (got " +
         std::to_string(time::to_sec(rtt_step_at)) + " s)");
  }
}

std::string ImpairmentConfig::describe() const {
  if (!enabled()) return "none";
  std::ostringstream os;
  auto sep = [&os, first = true]() mutable {
    if (!first) os << " ";
    first = false;
  };
  if (loss_rate > 0) {
    sep();
    os << "loss=" << loss_rate * 100 << "%";
  }
  if (ge_p_good_to_bad > 0) {
    sep();
    os << "ge=" << ge_loss_good * 100 << "%/" << ge_loss_bad * 100 << "%@"
       << ge_p_good_to_bad << "/" << ge_p_bad_to_good;
  }
  if (reorder_rate > 0) {
    sep();
    os << "reorder=" << reorder_rate * 100 << "%/" << reorder_gap;
  }
  if (duplicate_rate > 0) {
    sep();
    os << "dup=" << duplicate_rate * 100 << "%";
  }
  if (rtt_step_delta > 0) {
    sep();
    os << "rtt_step=+" << time::to_ms(rtt_step_delta) << "ms@"
       << time::to_sec(rtt_step_at) << "s";
  }
  if (ack_loss_rate > 0) {
    sep();
    os << "ack_loss=" << ack_loss_rate * 100 << "%";
  }
  return os.str();
}

ImpairmentStage::ImpairmentStage(Simulator& sim, const ImpairmentConfig& cfg,
                                 PacketSink* dst, Rng rng)
    : sim_(sim),
      cfg_(cfg),
      dst_(dst),
      rng_(rng),
      flush_timer_(sim),
      delay_timer_(sim) {
  cfg_.validate();
  flush_timer_.set([this] { on_flush(); });
  delay_timer_.set([this] {
    const Time now = sim_.now();
    while (!delay_q_.empty() && delay_q_.front().first <= now) {
      Packet p = std::move(delay_q_.front().second);
      delay_q_.pop_front();
      ++stats_.forwarded;
      dst_->deliver(std::move(p));
    }
    if (!delay_q_.empty()) delay_timer_.rearm(delay_q_.front().first);
  });
}

void ImpairmentStage::attach_metrics(obs::MetricsRegistry& reg,
                                     const std::string& prefix) {
  m_dropped_ = &reg.counter(prefix + ".dropped");
  m_duplicated_ = &reg.counter(prefix + ".duplicated");
  m_reordered_ = &reg.counter(prefix + ".reordered");
}

bool ImpairmentStage::roll_loss() {
  // One uniform per configured feature per packet, in a fixed order, so
  // the stream consumed is a pure function of the config and arrivals.
  bool drop = false;
  if (cfg_.loss_rate > 0 && rng_.uniform() < cfg_.loss_rate) drop = true;
  if (cfg_.ge_p_good_to_bad > 0) {
    const double flip = rng_.uniform();
    ge_bad_ = ge_bad_ ? flip >= cfg_.ge_p_bad_to_good
                      : flip < cfg_.ge_p_good_to_bad;
    const double p = ge_bad_ ? cfg_.ge_loss_bad : cfg_.ge_loss_good;
    if (p > 0 && rng_.uniform() < p) drop = true;
  }
  return drop;
}

void ImpairmentStage::release_ready_held() {
  // Held packets whose gap has elapsed re-enter *after* the passer-by,
  // preserving the hold-back-by-k semantics. Erase-by-swap is fine: the
  // relative release order among simultaneously-ready packets is not
  // specified beyond "after the k-th passer".
  for (std::size_t i = 0; i < held_.size();) {
    if (--held_[i].remaining <= 0) {
      Packet p = std::move(held_[i].pkt);
      held_[i] = std::move(held_.back());
      held_.pop_back();
      forward(std::move(p));
    } else {
      ++i;
    }
  }
  if (held_.empty()) {
    flush_timer_.cancel();
  } else {
    flush_timer_.rearm_in(cfg_.reorder_flush);
  }
}

void ImpairmentStage::on_flush() {
  // Idle-path deadline: release everything still held so a quiet sender
  // (e.g. 100% forward loss upstream) cannot strand packets forever.
  stats_.flushed += static_cast<std::int64_t>(held_.size());
  std::vector<Held> held = std::move(held_);
  held_.clear();
  for (Held& h : held) forward(std::move(h.pkt));
}

void ImpairmentStage::forward(Packet p) {
  if (cfg_.rtt_step_delta > 0 && sim_.now() >= cfg_.rtt_step_at) {
    ++stats_.delayed;
    const Time release = sim_.now() + cfg_.rtt_step_delta;
    const bool was_empty = delay_q_.empty();
    delay_q_.emplace_back(release, std::move(p));
    if (was_empty) delay_timer_.rearm(release);
    return;
  }
  ++stats_.forwarded;
  dst_->deliver(std::move(p));
}

void ImpairmentStage::deliver(Packet p) {
  QB_ATTRIB_SCOPE(kImpairment);
  ++stats_.packets_in;

  if (roll_loss()) {
    // A dropped packet never passes a held one: only forwarded traffic
    // counts toward reorder_gap (the flush timer bounds idle paths).
    ++stats_.dropped;
    if (m_dropped_ != nullptr) m_dropped_->add();
    return;
  }

  const bool duplicate =
      cfg_.duplicate_rate > 0 && rng_.uniform() < cfg_.duplicate_rate;
  const bool hold =
      cfg_.reorder_rate > 0 && rng_.uniform() < cfg_.reorder_rate;

  if (hold) {
    ++stats_.reordered;
    if (m_reordered_ != nullptr) m_reordered_->add();
    if (duplicate) {
      // The copy travels on time; the original is the one held back.
      ++stats_.duplicated;
      if (m_duplicated_ != nullptr) m_duplicated_->add();
      forward(p);
    }
    held_.push_back({std::move(p), cfg_.reorder_gap});
    flush_timer_.rearm_in(cfg_.reorder_flush);
    return;
  }

  if (duplicate) {
    ++stats_.duplicated;
    if (m_duplicated_ != nullptr) m_duplicated_->add();
    forward(p);  // copy
  }
  forward(std::move(p));
  release_ready_held();
}

} // namespace quicbench::netsim
