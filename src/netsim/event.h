#pragma once
// Discrete-event simulation core: a virtual clock over a two-tier event
// store. Events scheduled for the same time fire in scheduling order
// (FIFO), which keeps runs deterministic.
//
// Storage tiers (an optimization only — the fire order is identical to a
// single global min-heap ordered by (time, seq)):
//
//   * Timer wheel: events landing in a *future* wheel bucket (buckets of
//     2^kBucketBits ns, kNumBuckets of them, ~33 ms horizon) are appended
//     to their bucket in O(1). When the clock approaches a bucket it is
//     "activated": sorted once by (time, seq) and drained in order.
//     Buckets partition time into disjoint ranges, so per-bucket sorting
//     plus a min-comparison against the heap reproduces the global order
//     exactly. Link serialization, pacing, propagation delays and
//     RTT-scale loss/ack timers — the bulk of all events — land here.
//   * Fallback binary heap: everything else (beyond the wheel horizon,
//     or at/before the currently-activated bucket — PTO backoffs, trace
//     sampling ticks).
//
// Callbacks are util::InlineFn: `[this]`-capture callbacks (the hot
// path) are stored inline in the entry, so steady-state scheduling and
// dispatch perform no heap allocations.
//
// EventIds encode a slot index plus a per-slot generation, so cancel()
// validates in O(1) against the slot table: cancelling an already-fired,
// already-cancelled or never-issued id is a true no-op. Slots are
// recycled through a free list; FIFO ordering among equal timestamps
// therefore rides on a separate monotonic sequence number, not on the id.
//
// reschedule() postpones a pending event without touching its stored
// entry: the slot records the new (deadline, seq) and the stale entry is
// lazily revalidated when popped — if its seq no longer matches the
// slot's it is re-inserted at the current deadline instead of firing.
// This is what Timer::rearm rides on; Link/pacing timers re-arm
// monotonically millions of times per trial and skip the cancel+push
// round trip entirely.
//
// schedule()/reschedule() clamp times in the past to now() (and assert
// in debug builds): an event can never fire before the clock.

#include <cassert>
#include <cstdint>
#include <vector>

#include "util/inline_fn.h"
#include "util/units.h"

namespace quicbench::netsim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

// Event callback type: inline storage for every capture the simulator's
// hot paths use (see util/inline_fn.h).
using EventFn = util::InlineFn<void()>;

class Simulator {
 public:
  // `hint` pre-sizes the slot table, free list and fallback heap (a
  // dumbbell trial peaks at well under 256 concurrent events; see
  // Stats::heap_peak / slot_count for the observed values).
  explicit Simulator(std::size_t hint = kDefaultSizeHint);

  Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `t`. Times in the past are
  // clamped to now() (debug builds assert). Returns an id that can be
  // passed to `cancel` / `reschedule`.
  EventId schedule(Time t, EventFn fn);

  // Schedule `fn` to run `delay` after now.
  EventId schedule_in(Time delay, EventFn fn) {
    return schedule(now_ + delay, std::move(fn));
  }

  // Cancel a pending event. Cancelling an already-fired, already-cancelled
  // or invalid id is a no-op.
  void cancel(EventId id);

  // Move a pending event to fire at `t` instead, keeping its callback and
  // id. Equivalent to cancel(id) + schedule(t, same-callback) — including
  // FIFO ordering, which is re-keyed by a fresh sequence number — but
  // when the deadline only moves forward the stored entry is reused via
  // lazy revalidation instead of a cancel+push round trip. Returns false
  // (after cancelling `id` if it was live) when the caller must schedule
  // afresh: the id was stale, or the new time precedes the stored entry.
  bool reschedule(EventId id, Time t);

  // Run events until the queue is empty or the clock passes `end`.
  // The clock is left at min(end, time of last fired event).
  void run_until(Time end);

  // Fire the single next event, if any. Returns false when the queue is
  // empty.
  bool run_next();

  std::size_t pending_events() const { return pending_; }

  // Whether at least one stored entry is due at the current time, i.e.
  // the tick now() has not drained yet. O(1), non-mutating: whenever a
  // callback is running, run_next has already activated the earliest
  // non-empty wheel bucket, so entries due at now() can only sit in the
  // active bucket or the fallback heap (same-tick schedules made from
  // inside a callback land in the heap — their bucket is never ahead of
  // the cursor). Cancelled or postponed entries are counted, like every
  // other queue-front peek, so the answer is a conservative hint:
  // endpoints use it to decide whether coalescing same-tick deliveries
  // is still worth arming, and a false positive only costs a stash.
  bool has_pending_event_at_now() const {
    if (active_pos_ < active_.size() && active_[active_pos_].time == now_) {
      return true;
    }
    return !heap_.empty() && heap_.front().time == now_;
  }

  // Lifetime counters (never reset): how many events this simulator has
  // accepted (reschedules count — each replaces a cancel+schedule pair)
  // and how many callbacks actually ran (cancelled entries are skipped).
  // The sweep runner reports fired-events-per-second as the engine's
  // throughput metric.
  std::uint64_t events_scheduled() const { return scheduled_; }
  std::uint64_t events_fired() const { return fired_; }

  // Engine sizing telemetry, surfaced in sweep manifests next to
  // events_per_sec so size-hint regressions are visible.
  struct Stats {
    std::size_t heap_peak = 0;   // max entries in the fallback heap
    std::size_t wheel_peak = 0;  // max entries buffered in wheel buckets
    std::size_t slot_count = 0;  // slot table size (peak concurrent ids)
  };
  Stats stats() const { return {heap_peak_, wheel_peak_, slots_.size()}; }

  static constexpr std::size_t kDefaultSizeHint = 256;

 private:
  // Wheel geometry: 2048 buckets of 2^14 ns (~16.4 us) cover a ~33.6 ms
  // horizon — wide enough that propagation delays (5 ms at the paper's
  // default RTT), delayed-ack timers (25 ms) and RTT-scale loss timers
  // all take the O(1) wheel path; only multi-RTT PTO backoffs and other
  // long timers fall through to the heap. The bitmap scan in
  // activate_next_bucket keeps sparse wheels cheap, so the wider ring
  // costs only its one-off allocation (~48 KiB of empty bucket headers).
  static constexpr int kBucketBits = 14;
  static constexpr int kNumBuckets = 2048;
  static constexpr std::int64_t kBucketMask = kNumBuckets - 1;

  // id layout: low 32 bits = slot index + 1 (so kInvalidEvent never
  // collides), high 32 bits = the slot's generation at issue time.
  struct Slot {
    std::uint32_t generation = 0;
    bool pending = false;
    std::uint64_t seq = 0;   // current logical FIFO key
    Time deadline = 0;       // current logical deadline
    Time entry_time = 0;     // time of the physical entry in its tier
  };

  struct Entry {
    Time time;
    std::uint64_t seq;  // FIFO tie-break among equal timestamps
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Returns the slot index when `id` names a live (pending) event.
  bool decode_live(EventId id, std::uint32_t* slot) const;

  void insert_entry(Entry&& e);
  void heap_push(Entry&& e);
  Entry heap_pop();
  // Process the already-selected front entry of the wheel / heap tier:
  // fire it (true), or consume a cancelled / postponed entry (false).
  bool dispatch_wheel();
  bool dispatch_heap();
  // The next wheel entry in (time, seq) order, activating the next
  // non-empty bucket if the active one is drained; nullptr when the
  // wheel is empty. Activation never fires anything.
  Entry* wheel_front();
  void activate_next_bucket();
  // Earliest stored-entry time across both tiers (cancelled and stale
  // entries included, as with a plain heap); kInfinite when empty.
  Time next_entry_time();
  void release_slot(std::uint32_t slot);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t pending_ = 0;

  std::vector<Entry> heap_;  // binary heap via std::push_heap/pop_heap
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;

  // Wheel: lazily allocated on first in-horizon insert. `cur_bucket_` is
  // the absolute index (time >> kBucketBits) of the bucket most recently
  // activated into `active_`; ring slots are only valid for absolute
  // buckets in (cur_bucket_, cur_bucket_ + kNumBuckets].
  std::vector<std::vector<Entry>> buckets_;
  std::uint64_t bucket_bits_[kNumBuckets / 64] = {};
  std::int64_t cur_bucket_ = 0;
  std::size_t wheel_size_ = 0;  // entries in buckets_, excluding active_
  std::vector<Entry> active_;   // activated bucket, sorted ascending
  std::size_t active_pos_ = 0;

  std::size_t heap_peak_ = 0;
  std::size_t wheel_peak_ = 0;
};

// RAII-ish timer helper: owns at most one pending event and reschedules or
// cancels it. Components use this for pacing / loss / ack-delay timers.
//
// The callback is invoked in place (no per-fire move); installing a
// replacement from inside the callback via arm()/set() is still safe —
// the replacement is parked and swapped in after the running callback
// returns, so a callable never destroys itself mid-invocation. rearm()
// from inside the callback is the common case and touches only the
// schedule, never the stored callable.
class Timer {
 public:
  explicit Timer(Simulator& sim) : sim_(&sim) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  // Install the callback without scheduling anything. Components whose
  // timer always runs the same member function set it once at
  // construction and then only ever rearm().
  void set(EventFn fn) {
    assert(!armed() && "set() while armed; use arm()");
    install(std::move(fn));
  }

  // (Re)arm the timer to fire `fn` at absolute time `t`.
  void arm(Time t, EventFn fn) {
    install(std::move(fn));
    rearm(t);
  }

  void arm_in(Time delay, EventFn fn) {
    arm(sim_->now() + delay, std::move(fn));
  }

  // (Re)arm the timer at `t`, keeping the previously installed callback
  // (from set() or a prior arm()). When the timer is armed and `t` does
  // not precede the stored entry this is the engine's lazy-reschedule
  // fast path; otherwise it schedules afresh. Ordering is identical to
  // arm() with the same callback either way.
  void rearm(Time t) {
    if (id_ != kInvalidEvent && sim_->reschedule(id_, t)) return;
    assert(fn_ && "rearm() without an installed callback");
    id_ = sim_->schedule(t, [this] {
      id_ = kInvalidEvent;
      firing_ = true;
      fn_();
      firing_ = false;
      // A replacement installed from inside the callback lands here,
      // after the old callable has finished running.
      if (pending_) fn_ = std::move(pending_);
    });
  }

  void rearm_in(Time delay) { rearm(sim_->now() + delay); }

  void cancel() {
    if (id_ != kInvalidEvent) {
      sim_->cancel(id_);
      id_ = kInvalidEvent;
    }
  }

  bool armed() const { return id_ != kInvalidEvent; }

 private:
  void install(EventFn fn) {
    if (firing_) {
      pending_ = std::move(fn);  // defer: fn_ is currently executing
    } else {
      fn_ = std::move(fn);
    }
  }

  Simulator* sim_;
  EventId id_ = kInvalidEvent;
  bool firing_ = false;
  EventFn fn_;
  EventFn pending_;
};

} // namespace quicbench::netsim
