#pragma once
// Discrete-event simulation core: a virtual clock plus a min-heap of
// scheduled callbacks. Events scheduled for the same time fire in
// scheduling order (FIFO), which keeps runs deterministic.
//
// EventIds encode a slot index plus a per-slot generation, so cancel()
// validates in O(1) against the slot table: cancelling an already-fired,
// already-cancelled or never-issued id is a true no-op (the previous
// lazy-deletion set let stale cancels accumulate forever and could
// underflow pending_events()). Slots are recycled through a free list;
// FIFO ordering among equal timestamps therefore rides on a separate
// monotonic sequence number, not on the id.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.h"

namespace quicbench::netsim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `t` (>= now). Returns an id that
  // can be passed to `cancel`.
  EventId schedule(Time t, std::function<void()> fn);

  // Schedule `fn` to run `delay` after now.
  EventId schedule_in(Time delay, std::function<void()> fn) {
    return schedule(now_ + delay, std::move(fn));
  }

  // Cancel a pending event. Cancelling an already-fired, already-cancelled
  // or invalid id is a no-op.
  void cancel(EventId id);

  // Run events until the queue is empty or the clock passes `end`.
  // The clock is left at min(end, time of last fired event).
  void run_until(Time end);

  // Fire the single next event, if any. Returns false when the queue is
  // empty.
  bool run_next();

  std::size_t pending_events() const { return pending_; }

  // Lifetime counters (never reset): how many events this simulator has
  // accepted and how many callbacks actually ran (cancelled entries are
  // skipped). The sweep runner reports fired-events-per-second as the
  // engine's throughput metric.
  std::uint64_t events_scheduled() const { return scheduled_; }
  std::uint64_t events_fired() const { return fired_; }

 private:
  // id layout: low 32 bits = slot index + 1 (so kInvalidEvent never
  // collides), high 32 bits = the slot's generation at issue time.
  struct Slot {
    std::uint32_t generation = 0;
    bool pending = false;
  };

  struct Entry {
    Time time;
    std::uint64_t seq;  // FIFO tie-break among equal timestamps
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Returns the slot index when `id` names a live (pending) event.
  bool decode_live(EventId id, std::uint32_t* slot) const;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

// RAII-ish timer helper: owns at most one pending event and reschedules or
// cancels it. Components use this for pacing / loss / ack-delay timers.
class Timer {
 public:
  explicit Timer(Simulator& sim) : sim_(&sim) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  // (Re)arm the timer to fire `fn` at absolute time `t`. The callback is
  // stored in the timer and the scheduled thunk captures only `this`, so
  // small callbacks never allocate. The callback is moved to a local
  // before invocation, so re-arming from inside it is safe.
  void arm(Time t, std::function<void()> fn) {
    cancel();
    fn_ = std::move(fn);
    id_ = sim_->schedule(t, [this] {
      id_ = kInvalidEvent;
      auto f = std::move(fn_);
      f();
    });
  }

  void arm_in(Time delay, std::function<void()> fn) {
    arm(sim_->now() + delay, std::move(fn));
  }

  void cancel() {
    if (id_ != kInvalidEvent) {
      sim_->cancel(id_);
      id_ = kInvalidEvent;
    }
  }

  bool armed() const { return id_ != kInvalidEvent; }

 private:
  Simulator* sim_;
  EventId id_ = kInvalidEvent;
  std::function<void()> fn_;
};

} // namespace quicbench::netsim
