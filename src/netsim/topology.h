#pragma once
// Dumbbell topology used by all experiments in the paper: N senders share
// one droptail bottleneck toward their receivers; ACKs return over
// unconstrained per-flow delay lines.
//
//   sender[i] --> [bottleneck queue+link] --> demux --> receiver[i]
//   receiver[i] --> [reverse delay line i] --> sender[i]
//
// The one-way forward propagation plus the reverse delay equals the
// configured base RTT (serialization excluded).

#include <functional>
#include <memory>
#include <vector>

#include "netsim/event.h"
#include "netsim/impairment.h"
#include "netsim/link.h"
#include "netsim/packet.h"
#include "netsim/tracelink.h"
#include "util/rng.h"

namespace quicbench::netsim {

// Routes packets to per-flow sinks by Packet::flow.
class FlowDemux : public PacketSink {
 public:
  // Caps the accepted flow-id range to [0, max_flows). The default (no
  // cap) accepts any non-negative id; the Dumbbell sets the cap to its
  // flow count so a mis-wired endpoint fails at registration instead of
  // silently growing the table.
  void set_capacity(int max_flows);

  // Registers `sink` for `flow`. Ids may be registered sparsely (gaps
  // stay unrouted and drop at the edge), but a negative id, an id at or
  // beyond the capacity, or a second registration of the same id is a
  // wiring bug and throws std::logic_error.
  void register_flow(int flow, PacketSink* sink);
  void deliver(Packet p) override;

 private:
  std::vector<PacketSink*> sinks_;  // indexed by flow id
  int capacity_ = -1;               // < 0: uncapped
};

struct DumbbellConfig {
  Rate bandwidth = 0;
  Time base_rtt = 0;
  Bytes buffer_bytes = 0;
  // Optional "wild" path noise (Fig 11): uniform jitter added on the
  // forward path after the bottleneck, and on the reverse path.
  Time path_jitter = 0;
  bool jitter_allows_reorder = false;
  // Optional Mahimahi-style delivery trace; when non-empty it replaces
  // the fixed-rate bottleneck (bandwidth is then ignored).
  std::vector<Time> trace_opportunities;
  Time trace_period = 0;
  Bytes trace_mtu = 1500;
  // Optional adversarial impairments. The forward features wrap the
  // bottleneck ingress (shared by all flows + cross traffic); ack_loss_rate
  // applies per-flow on the reverse path. A disabled config adds no stages
  // and consumes no RNG state, so it is bit-identical to the field not
  // existing at all. Requires a jitter_rng when enabled.
  ImpairmentConfig impairment;
  // Same-tick delivery batching on the fixed-rate bottleneck (see
  // Link::set_batch_same_tick_delivery): delivery order is unchanged,
  // timer-event counts shrink. No effect on trace bottlenecks.
  bool batch_same_tick_delivery = false;
};

class Dumbbell {
 public:
  Dumbbell(Simulator& sim, const DumbbellConfig& cfg, int n_flows,
           Rng* jitter_rng = nullptr);

  // Where flow `i`'s sender should inject data packets (the forward
  // impairment stage when configured, else the bottleneck itself).
  PacketSink* forward_in() {
    if (forward_impair_) return forward_impair_.get();
    return trace_bottleneck_ ? static_cast<PacketSink*>(trace_bottleneck_.get())
                             : static_cast<PacketSink*>(bottleneck_.get());
  }
  // Where flow `i`'s receiver should inject ACKs (the per-flow ACK-loss
  // stage when configured, else the reverse delay line).
  PacketSink* reverse_in(int flow) {
    if (!ack_impair_.empty()) return ack_impair_[flow].get();
    return reverse_[flow].get();
  }

  // Attach the endpoints. Must be called for every flow before running.
  void attach_receiver(int flow, PacketSink* receiver);
  void attach_sender_ack_sink(int flow, PacketSink* sender);

  // Fixed-rate bottleneck accessors (null when a trace is configured).
  Link& bottleneck() { return *bottleneck_; }
  const Link& bottleneck() const { return *bottleneck_; }
  TraceLink* trace_bottleneck() { return trace_bottleneck_.get(); }

  // Impairment stage accessors (null/empty when not configured).
  ImpairmentStage* forward_impairment() { return forward_impair_.get(); }
  ImpairmentStage* ack_impairment(int flow) {
    return ack_impair_.empty() ? nullptr : ack_impair_[flow].get();
  }

 private:
  std::unique_ptr<Link> bottleneck_;
  std::unique_ptr<TraceLink> trace_bottleneck_;
  std::unique_ptr<ImpairmentStage> forward_impair_;
  std::unique_ptr<DelayLine> forward_tail_;  // carries post-bottleneck jitter
  FlowDemux demux_;
  std::vector<std::unique_ptr<DelayLine>> reverse_;
  std::vector<std::unique_ptr<ImpairmentStage>> ack_impair_;
  FlowDemux reverse_demux_;
};

// Poisson on/off UDP-like cross traffic for the "in the wild" experiments.
// During an ON burst, packets of `packet_size` arrive with exponential
// inter-arrival times at `rate`; bursts and gaps have exponential lengths.
class CrossTrafficSource {
 public:
  CrossTrafficSource(Simulator& sim, PacketSink* sink, Rate rate,
                     Bytes packet_size, Time mean_on, Time mean_off,
                     Rng rng);

  void start();

 private:
  void schedule_next_packet();
  void toggle();

  Simulator& sim_;
  PacketSink* sink_;
  Rate rate_;
  Bytes packet_size_;
  Time mean_on_;
  Time mean_off_;
  Rng rng_;
  bool on_ = false;
  Timer packet_timer_;
  Timer toggle_timer_;
};

} // namespace quicbench::netsim
