#include "netsim/topology.h"

#include <cassert>
#include <stdexcept>
#include <string>

namespace quicbench::netsim {

void FlowDemux::set_capacity(int max_flows) {
  capacity_ = max_flows;
  if (max_flows > 0) sinks_.reserve(static_cast<std::size_t>(max_flows));
}

void FlowDemux::register_flow(int flow, PacketSink* sink) {
  if (flow < 0) {
    throw std::logic_error("FlowDemux: flow id must be >= 0 (got " +
                           std::to_string(flow) + ")");
  }
  if (capacity_ >= 0 && flow >= capacity_) {
    throw std::logic_error(
        "FlowDemux: flow id " + std::to_string(flow) +
        " is out of range for a topology with " + std::to_string(capacity_) +
        " flows");
  }
  if (sink == nullptr) {
    throw std::logic_error("FlowDemux: sink for flow " + std::to_string(flow) +
                           " must not be null");
  }
  if (sinks_.size() <= static_cast<std::size_t>(flow)) {
    sinks_.resize(static_cast<std::size_t>(flow) + 1, nullptr);
  }
  if (sinks_[static_cast<std::size_t>(flow)] != nullptr) {
    throw std::logic_error("FlowDemux: flow " + std::to_string(flow) +
                           " is already registered");
  }
  sinks_[static_cast<std::size_t>(flow)] = sink;
}

void FlowDemux::deliver(Packet p) {
  if (p.flow < 0 || static_cast<std::size_t>(p.flow) >= sinks_.size() ||
      sinks_[static_cast<std::size_t>(p.flow)] == nullptr) {
    // Cross traffic or unattached flow: drop at the edge.
    return;
  }
  sinks_[static_cast<std::size_t>(p.flow)]->deliver(std::move(p));
}

Dumbbell::Dumbbell(Simulator& sim, const DumbbellConfig& cfg, int n_flows,
                   Rng* jitter_rng) {
  const bool traced = !cfg.trace_opportunities.empty();
  if ((!traced && cfg.bandwidth <= 0) || cfg.base_rtt <= 0 ||
      cfg.buffer_bytes <= 0) {
    throw std::invalid_argument("Dumbbell: bandwidth (or trace), base_rtt "
                                "and buffer must be positive");
  }
  if (n_flows < 1) {
    throw std::invalid_argument("Dumbbell: n_flows must be >= 1");
  }
  demux_.set_capacity(n_flows);
  reverse_demux_.set_capacity(n_flows);
  const Time forward_prop = cfg.base_rtt / 2;
  const Time reverse_prop = cfg.base_rtt - forward_prop;

  forward_tail_ = std::make_unique<DelayLine>(sim, 0, &demux_);
  if (traced) {
    trace_bottleneck_ = std::make_unique<TraceLink>(
        sim, cfg.trace_opportunities, cfg.trace_period, forward_prop,
        cfg.buffer_bytes, forward_tail_.get(), cfg.trace_mtu);
  } else {
    bottleneck_ =
        std::make_unique<Link>(sim, cfg.bandwidth, forward_prop,
                               cfg.buffer_bytes, forward_tail_.get());
    bottleneck_->set_batch_same_tick_delivery(cfg.batch_same_tick_delivery);
  }

  reverse_.reserve(static_cast<std::size_t>(n_flows));
  for (int i = 0; i < n_flows; ++i) {
    reverse_.push_back(
        std::make_unique<DelayLine>(sim, reverse_prop, &reverse_demux_));
  }

  if (cfg.path_jitter > 0) {
    if (jitter_rng == nullptr) {
      throw std::invalid_argument("Dumbbell: path_jitter requires an Rng");
    }
    // Independent jitter streams per element keep trials reproducible.
    auto make_uniform = [jitter_rng](std::uint64_t id) {
      auto rng = std::make_shared<Rng>(jitter_rng->fork(id));
      return [rng] { return rng->uniform(); };
    };
    forward_tail_->set_jitter(cfg.path_jitter, make_uniform(1),
                              cfg.jitter_allows_reorder);
    for (std::size_t i = 0; i < reverse_.size(); ++i) {
      reverse_[i]->set_jitter(cfg.path_jitter, make_uniform(100 + i),
                              cfg.jitter_allows_reorder);
    }
  }

  // Impairment stages fork their streams only when enabled (fork advances
  // the parent Rng): a disabled config leaves every other stream — and
  // therefore every result — bit-identical. Stream ids are disjoint from
  // the jitter ids above.
  if (cfg.impairment.enabled()) {
    if (jitter_rng == nullptr) {
      throw std::invalid_argument("Dumbbell: impairment requires an Rng");
    }
    cfg.impairment.validate();
    ImpairmentConfig fwd = cfg.impairment;
    fwd.ack_loss_rate = 0;
    if (fwd.enabled()) {
      PacketSink* bottleneck_in =
          traced ? static_cast<PacketSink*>(trace_bottleneck_.get())
                 : static_cast<PacketSink*>(bottleneck_.get());
      forward_impair_ = std::make_unique<ImpairmentStage>(
          sim, fwd, bottleneck_in, jitter_rng->fork(200));
    }
    if (cfg.impairment.ack_loss_rate > 0) {
      ack_impair_.reserve(static_cast<std::size_t>(n_flows));
      for (int i = 0; i < n_flows; ++i) {
        ack_impair_.push_back(std::make_unique<ImpairmentStage>(
            sim, cfg.impairment.ack_path_view(),
            reverse_[static_cast<std::size_t>(i)].get(),
            jitter_rng->fork(300 + static_cast<std::uint64_t>(i))));
      }
    }
  }
}

void Dumbbell::attach_receiver(int flow, PacketSink* receiver) {
  demux_.register_flow(flow, receiver);
}

void Dumbbell::attach_sender_ack_sink(int flow, PacketSink* sender) {
  reverse_demux_.register_flow(flow, sender);
}

CrossTrafficSource::CrossTrafficSource(Simulator& sim, PacketSink* sink,
                                       Rate rate, Bytes packet_size,
                                       Time mean_on, Time mean_off, Rng rng)
    : sim_(sim),
      sink_(sink),
      rate_(rate),
      packet_size_(packet_size),
      mean_on_(mean_on),
      mean_off_(mean_off),
      rng_(rng),
      packet_timer_(sim),
      toggle_timer_(sim) {
  packet_timer_.set([this] {
    Packet p;
    p.kind = PacketKind::kData;
    p.flow = -1;
    p.size = packet_size_;
    p.sent_time = sim_.now();
    sink_->deliver(std::move(p));
    schedule_next_packet();
  });
  toggle_timer_.set([this] { toggle(); });
}

void CrossTrafficSource::start() {
  on_ = true;
  schedule_next_packet();
  toggle_timer_.rearm_in(
      static_cast<Time>(rng_.exponential(static_cast<double>(mean_on_))));
}

void CrossTrafficSource::schedule_next_packet() {
  if (!on_) return;
  const double mean_gap_ns =
      static_cast<double>(packet_size_) * 8.0 / rate_ * 1e9;
  packet_timer_.rearm_in(static_cast<Time>(rng_.exponential(mean_gap_ns)));
}

void CrossTrafficSource::toggle() {
  on_ = !on_;
  const Time mean = on_ ? mean_on_ : mean_off_;
  if (on_) schedule_next_packet();
  else packet_timer_.cancel();
  toggle_timer_.rearm_in(
      static_cast<Time>(rng_.exponential(static_cast<double>(mean))));
}

} // namespace quicbench::netsim
