#include "netsim/event.h"

#include <cassert>

namespace quicbench::netsim {

bool Simulator::decode_live(EventId id, std::uint32_t* slot) const {
  const std::uint32_t low = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  if (low == 0) return false;  // kInvalidEvent and malformed ids
  const std::uint32_t s = low - 1;
  if (s >= slots_.size()) return false;
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (slots_[s].generation != generation || !slots_[s].pending) return false;
  *slot = s;
  return true;
}

EventId Simulator::schedule(Time t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    ++slots_[slot].generation;  // retire every id issued for this slot
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  slots_[slot].pending = true;
  const EventId id =
      (static_cast<EventId>(slots_[slot].generation) << 32) |
      static_cast<EventId>(slot + 1);
  ++scheduled_;
  ++pending_;
  heap_.push(Entry{t < now_ ? now_ : t, next_seq_++, id, std::move(fn)});
  return id;
}

void Simulator::cancel(EventId id) {
  std::uint32_t slot;
  if (!decode_live(id, &slot)) return;  // stale/double/invalid: no-op
  slots_[slot].pending = false;
  free_slots_.push_back(slot);
  --pending_;
  // The heap entry stays until popped; the generation check skips it.
}

bool Simulator::run_next() {
  while (!heap_.empty()) {
    // priority_queue::top returns const&; we need to move the callback out,
    // so copy the cheap fields first and const_cast the entry for the move.
    auto& top = const_cast<Entry&>(heap_.top());
    const Time t = top.time;
    const EventId id = top.id;
    std::function<void()> fn = std::move(top.fn);
    heap_.pop();
    std::uint32_t slot;
    if (!decode_live(id, &slot)) continue;  // cancelled entry
    slots_[slot].pending = false;
    free_slots_.push_back(slot);
    --pending_;
    now_ = t;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Time end) {
  while (!heap_.empty()) {
    const Time t = heap_.top().time;
    if (t > end) break;
    run_next();
  }
  if (now_ < end) now_ = end;
}

} // namespace quicbench::netsim
