#include "netsim/event.h"

#include <cassert>

namespace quicbench::netsim {

EventId Simulator::schedule(Time t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  ++scheduled_;
  heap_.push(Entry{t < now_ ? now_ : t, id, std::move(fn)});
  return id;
}

void Simulator::cancel(EventId id) {
  if (id != kInvalidEvent) cancelled_.insert(id);
}

bool Simulator::run_next() {
  while (!heap_.empty()) {
    // priority_queue::top returns const&; we need to move the callback out,
    // so copy the cheap fields first and const_cast the entry for the move.
    auto& top = const_cast<Entry&>(heap_.top());
    const Time t = top.time;
    const EventId id = top.id;
    std::function<void()> fn = std::move(top.fn);
    heap_.pop();
    if (auto it = cancelled_.find(id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = t;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Time end) {
  while (!heap_.empty()) {
    const Time t = heap_.top().time;
    if (t > end) break;
    run_next();
  }
  if (now_ < end) now_ = end;
}

} // namespace quicbench::netsim
