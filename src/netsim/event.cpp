#include "netsim/event.h"

#include <algorithm>
#include <bit>

#include "obs/attrib.h"

namespace quicbench::netsim {

Simulator::Simulator(std::size_t hint) {
  if (hint > 0) {
    heap_.reserve(hint);
    slots_.reserve(hint);
    free_slots_.reserve(hint);
  }
}

bool Simulator::decode_live(EventId id, std::uint32_t* slot) const {
  const std::uint32_t low = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  if (low == 0) return false;  // kInvalidEvent and malformed ids
  const std::uint32_t s = low - 1;
  if (s >= slots_.size()) return false;
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (slots_[s].generation != generation || !slots_[s].pending) return false;
  *slot = s;
  return true;
}

void Simulator::release_slot(std::uint32_t slot) {
  slots_[slot].pending = false;
  free_slots_.push_back(slot);
  --pending_;
}

void Simulator::heap_push(Entry&& e) {
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  heap_peak_ = std::max(heap_peak_, heap_.size());
}

Simulator::Entry Simulator::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

void Simulator::insert_entry(Entry&& e) {
  const std::int64_t ab = e.time >> kBucketBits;
  if (ab > cur_bucket_ && ab - cur_bucket_ <= kNumBuckets) {
    if (buckets_.empty()) buckets_.resize(kNumBuckets);
    const auto slot = static_cast<std::size_t>(ab & kBucketMask);
    buckets_[slot].push_back(std::move(e));
    bucket_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    ++wheel_size_;
    wheel_peak_ = std::max(wheel_peak_, wheel_size_);
  } else {
    heap_push(std::move(e));
  }
}

void Simulator::activate_next_bucket() {
  // First set bucket bit in ring order starting just past cur_bucket_.
  // kNumBuckets % 64 == 0, so each scanned chunk stays within one word.
  const auto base = static_cast<std::size_t>((cur_bucket_ + 1) & kBucketMask);
  std::size_t slot = kNumBuckets;
  for (std::size_t scanned = 0; scanned < kNumBuckets;) {
    const std::size_t pos = (base + scanned) & kBucketMask;
    const std::uint64_t bits = bucket_bits_[pos >> 6] >> (pos & 63);
    if (bits != 0) {
      slot = pos + static_cast<std::size_t>(std::countr_zero(bits));
      break;
    }
    scanned += 64 - (pos & 63);
  }
  assert(slot < kNumBuckets && "activate_next_bucket on an empty wheel");

  // Smallest absolute bucket index > cur_bucket_ mapping to `slot`; the
  // insert window guarantees this is the bucket the entries belong to.
  std::int64_t ab =
      (cur_bucket_ & ~kBucketMask) | static_cast<std::int64_t>(slot);
  if (ab <= cur_bucket_) ab += kNumBuckets;

  active_.clear();
  std::swap(active_, buckets_[slot]);  // recycles the old active capacity
  // Most buckets hold a single entry (link serialization / pacing ticks
  // land one per interval), so bypass the sort machinery for n <= 2; the
  // two-element case swaps exactly when std::sort would.
  const auto cmp = [](const Entry& a, const Entry& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  };
  if (active_.size() > 2) {
    std::sort(active_.begin(), active_.end(), cmp);
  } else if (active_.size() == 2 && cmp(active_[1], active_[0])) {
    std::swap(active_[0], active_[1]);
  }
  active_pos_ = 0;
  wheel_size_ -= active_.size();
  bucket_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  cur_bucket_ = ab;
}

Simulator::Entry* Simulator::wheel_front() {
  if (active_pos_ < active_.size()) return &active_[active_pos_];
  if (wheel_size_ == 0) return nullptr;
  activate_next_bucket();
  return &active_[active_pos_];
}

Time Simulator::next_entry_time() {
  const Entry* w = wheel_front();
  Time t = w != nullptr ? w->time : time::kInfinite;
  if (!heap_.empty() && heap_.front().time < t) t = heap_.front().time;
  return t;
}

EventId Simulator::schedule(Time t, EventFn fn) {
  QB_ATTRIB_SCOPE(kEngineSchedule);
  assert(t >= now_ && "cannot schedule into the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    ++slots_[slot].generation;  // retire every id issued for this slot
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  const Time tt = t < now_ ? now_ : t;
  Slot& sl = slots_[slot];
  sl.pending = true;
  sl.seq = next_seq_;
  sl.deadline = tt;
  sl.entry_time = tt;
  const EventId id =
      (static_cast<EventId>(sl.generation) << 32) |
      static_cast<EventId>(slot + 1);
  ++scheduled_;
  ++pending_;
  // Tier choice inlined so the callback is constructed directly in its
  // destination (GCC emplaces the aggregate in place) instead of moving
  // through an Entry temporary.
  const std::uint64_t seq = next_seq_++;
  const std::int64_t ab = tt >> kBucketBits;
  if (ab > cur_bucket_ && ab - cur_bucket_ <= kNumBuckets) {
    if (buckets_.empty()) buckets_.resize(kNumBuckets);
    const auto bslot = static_cast<std::size_t>(ab & kBucketMask);
    buckets_[bslot].emplace_back(tt, seq, id, std::move(fn));
    bucket_bits_[bslot >> 6] |= std::uint64_t{1} << (bslot & 63);
    ++wheel_size_;
    wheel_peak_ = std::max(wheel_peak_, wheel_size_);
  } else {
    heap_push(Entry{tt, seq, id, std::move(fn)});
  }
  return id;
}

void Simulator::cancel(EventId id) {
  std::uint32_t slot;
  if (!decode_live(id, &slot)) return;  // stale/double/invalid: no-op
  release_slot(slot);
  // The stored entry stays until popped; the generation check skips it.
}

bool Simulator::reschedule(EventId id, Time t) {
  QB_ATTRIB_SCOPE(kEngineSchedule);
  assert(t >= now_ && "cannot reschedule into the past");
  std::uint32_t slot;
  if (!decode_live(id, &slot)) return false;
  const Time tt = t < now_ ? now_ : t;
  Slot& sl = slots_[slot];
  if (tt < sl.entry_time) {
    // The stored entry would pop too late to revalidate; cancel so the
    // caller can schedule afresh.
    release_slot(slot);
    return false;
  }
  // Lazy postpone: the stored entry keeps its old (time, seq); when it
  // pops, the seq mismatch re-inserts it at this deadline. The fresh seq
  // re-keys FIFO ordering exactly as a cancel+schedule pair would.
  sl.deadline = tt;
  sl.seq = next_seq_++;
  ++scheduled_;
  return true;
}

bool Simulator::dispatch_wheel() {
  // Fire in place: the active bucket is stable while the callback runs
  // (new events land in future buckets or the heap, never in active_),
  // so the common wheel path skips the Entry move; spent entries are
  // reclaimed wholesale at the next activation.
  QB_ATTRIB_SCOPE(kEngineWheel);
  Entry& e = active_[active_pos_++];
  std::uint32_t slot;
  if (!decode_live(e.id, &slot)) return false;  // cancelled entry
  Slot& sl = slots_[slot];
  if (sl.seq != e.seq) {
    // Postponed via reschedule(): re-key and re-insert instead of
    // firing (lazy revalidation).
    e.time = sl.entry_time = sl.deadline;
    e.seq = sl.seq;
    insert_entry(std::move(e));
    return false;
  }
  release_slot(slot);
  now_ = e.time;
  ++fired_;
  e.fn();
  return true;
}

bool Simulator::dispatch_heap() {
  QB_ATTRIB_SCOPE(kEngineHeap);
  Entry e = heap_pop();
  std::uint32_t slot;
  if (!decode_live(e.id, &slot)) return false;  // cancelled entry
  Slot& sl = slots_[slot];
  if (sl.seq != e.seq) {
    e.time = sl.entry_time = sl.deadline;
    e.seq = sl.seq;
    insert_entry(std::move(e));
    return false;
  }
  release_slot(slot);
  now_ = e.time;
  ++fired_;
  e.fn();
  return true;
}

bool Simulator::run_next() {
  for (;;) {
    Entry* w = wheel_front();
    const bool have_heap = !heap_.empty();
    if (w == nullptr && !have_heap) return false;
    bool take_wheel = w != nullptr;
    if (w != nullptr && have_heap) {
      const Entry& h = heap_.front();
      take_wheel = w->time != h.time ? w->time < h.time : w->seq < h.seq;
    }
    if (take_wheel ? dispatch_wheel() : dispatch_heap()) return true;
  }
}

void Simulator::run_until(Time end) {
  // Fused peek + dispatch: one entry selection per event instead of a
  // next_entry_time() pass followed by run_next() redoing it. The end
  // bound is checked against the first candidate of each fire — exactly
  // where next_entry_time() sampled it — and, as before, not re-checked
  // while skipping cancelled or postponed entries.
  // Attribution: kEngineRun's exclusive time is the selection machinery
  // (bucket activation, wheel/heap merge); dispatch + callbacks land in
  // the kEngineWheel/kEngineHeap children.
  QB_ATTRIB_SCOPE(kEngineRun);
  bool check = true;
  for (;;) {
    Entry* w = wheel_front();
    const bool have_heap = !heap_.empty();
    if (w == nullptr && !have_heap) break;
    bool take_wheel = w != nullptr;
    if (w != nullptr && have_heap) {
      const Entry& h = heap_.front();
      take_wheel = w->time != h.time ? w->time < h.time : w->seq < h.seq;
    }
    if (check) {
      const Time t = take_wheel ? w->time : heap_.front().time;
      if (t > end) break;
      check = false;
    }
    if (take_wheel ? dispatch_wheel() : dispatch_heap()) check = true;
  }
  if (now_ < end) now_ = end;
}

} // namespace quicbench::netsim
