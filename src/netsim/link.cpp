#include "netsim/link.h"

#include <algorithm>

#include "obs/attrib.h"
#include "obs/metrics.h"

namespace quicbench::netsim {

Link::Link(Simulator& sim, Rate bandwidth, Time prop_delay,
           Bytes buffer_bytes, PacketSink* dst)
    : sim_(sim),
      bandwidth_(bandwidth),
      prop_delay_(prop_delay),
      buffer_bytes_(buffer_bytes),
      dst_(dst),
      tx_timer_(sim),
      prop_timer_(sim) {
  tx_timer_.set([this] { on_transmit_done(); });
  prop_timer_.set([this] { on_prop_deliver(); });
  queue_.reserve(64);
  prop_.reserve(64);
}

void Link::attach_metrics(obs::MetricsRegistry& reg,
                          const std::string& prefix) {
  m_drops_data_ = &reg.counter(prefix + ".drops.data");
  m_drops_cross_ = &reg.counter(prefix + ".drops.cross");
  m_queue_bytes_ = &reg.gauge(prefix + ".queue_bytes");
}

void Link::deliver(Packet p) {
  QB_ATTRIB_SCOPE(kLink);
  ++stats_.packets_in;
  if (queued_bytes_ + p.size > buffer_bytes_) {
    ++stats_.packets_dropped;
    if (m_drops_data_ != nullptr) {
      (p.flow >= 0 ? *m_drops_data_ : *m_drops_cross_).add();
    }
    if (drop_cb_) drop_cb_(p);
    return;
  }
  queued_bytes_ += p.size;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  if (m_queue_bytes_ != nullptr) {
    m_queue_bytes_->set(static_cast<double>(queued_bytes_));
  }
  queue_.push_back(std::move(p));
  if (!transmitting_) start_transmission();
}

void Link::start_transmission() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  tx_packet_ = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= tx_packet_.size;
  tx_timer_.rearm_in(serialization_time(tx_packet_.size, bandwidth_));
}

void Link::on_transmit_done() {
  QB_ATTRIB_SCOPE(kLink);
  ++stats_.packets_out;
  stats_.bytes_out += tx_packet_.size;
  const Time arrival = sim_.now() + prop_delay_;
  prop_.emplace_back(arrival, std::move(tx_packet_));
  if (!prop_timer_.armed()) prop_timer_.rearm(arrival);
  start_transmission();
}

void Link::on_prop_deliver() {
  QB_ATTRIB_SCOPE(kLink);
  Packet p = std::move(prop_.front().second);
  prop_.pop_front();
  if (batch_same_tick_ && !prop_.empty() &&
      prop_.front().first <= sim_.now() && !sim_.has_pending_event_at_now()) {
    // Same-tick drain (see set_batch_same_tick_delivery): the probe says
    // no foreign event is pending at this tick, so the unbatched path
    // would spend one rearm-to-now timer fire per remaining due packet
    // with nothing able to interleave except events our own deliveries
    // spawn — and those (the delay-line release that coalesces this
    // tick's arrivals, ack departures behind positive reverse delays)
    // observe the same per-component delivery order either way. Deliver
    // the whole due run from this one fire.
    dst_->deliver(std::move(p));
    do {
      ++stats_.same_tick_batched;
      Packet q = std::move(prop_.front().second);
      prop_.pop_front();
      dst_->deliver(std::move(q));
    } while (!prop_.empty() && prop_.front().first <= sim_.now());
    if (!prop_.empty()) prop_timer_.rearm(prop_.front().first);
    return;
  }
  if (!prop_.empty()) prop_timer_.rearm(prop_.front().first);
  dst_->deliver(std::move(p));
}

void DelayLine::deliver(Packet p) {
  QB_ATTRIB_SCOPE(kLink);
  Time release = sim_.now() + delay_;
  if (jitter_ > 0 && uniform01_) {
    release += static_cast<Time>(uniform01_() * static_cast<double>(jitter_));
    if (!allow_reorder_) release = std::max(release, last_release_);
    last_release_ = release;
  }
  if (!allow_reorder_) {
    // Monotonic release times: plain FIFO, and a new packet is only the
    // front when the line was idle.
    const bool was_empty = fifo_.empty();
    fifo_.emplace_back(release, std::move(p));
    if (was_empty) release_timer_.rearm(release);
    return;
  }
  const bool new_front = pending_.empty() || release < pending_.begin()->first;
  pending_.emplace(release, std::move(p));
  if (new_front) release_timer_.rearm(release);
}

void DelayLine::on_release() {
  QB_ATTRIB_SCOPE(kLink);
  const Time now = sim_.now();
  // Deliver everything due; FIFO order (equal-keyed multimap entries
  // preserve insertion order too).
  while (!fifo_.empty() && fifo_.front().first <= now) {
    Packet p = std::move(fifo_.front().second);
    fifo_.pop_front();
    dst_->deliver(std::move(p));
  }
  while (!pending_.empty() && pending_.begin()->first <= now) {
    Packet p = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    dst_->deliver(std::move(p));
  }
  if (!fifo_.empty()) {
    release_timer_.rearm(fifo_.front().first);
  } else if (!pending_.empty()) {
    release_timer_.rearm(pending_.begin()->first);
  }
}

} // namespace quicbench::netsim
