#pragma once
// Mahimahi-style trace-driven link: the bottleneck's capacity is a list
// of timestamped packet-delivery opportunities (one MTU of credit each)
// that repeats with a fixed period — exactly the record-and-replay model
// of Netravali et al.'s Mahimahi, which the paper uses for emulation.
// A constant-rate trace reproduces the fixed-capacity Link; recorded or
// synthesized cellular traces give the volatile-bandwidth regime the
// paper flags as future work ("networks with highly volatile bandwidth
// variations, like 5G").

#include <functional>
#include <utility>
#include <vector>

#include "netsim/event.h"
#include "netsim/link.h"
#include "netsim/packet.h"
#include "util/fifo.h"
#include "util/rng.h"
#include "util/units.h"

namespace quicbench::netsim {

class TraceLink : public PacketSink {
 public:
  // `opportunities`: strictly increasing timestamps within [0, period).
  // Each grants `mtu` bytes of delivery credit. The schedule repeats
  // every `period`.
  TraceLink(Simulator& sim, std::vector<Time> opportunities, Time period,
            Time prop_delay, Bytes buffer_bytes, PacketSink* dst,
            Bytes mtu = 1500);

  void deliver(Packet p) override;

  const LinkStats& stats() const { return stats_; }
  Bytes queued_bytes() const { return queued_bytes_; }

  // Packets queued awaiting a delivery opportunity; see
  // Link::packets_resident() for the conservation identity.
  std::int64_t packets_resident() const {
    return static_cast<std::int64_t>(queue_.size());
  }

  // Average rate of the trace in bits/sec.
  Rate average_rate() const;

 private:
  void arm_next_opportunity();
  void on_opportunity();
  Time next_opportunity_time() const;

  Simulator& sim_;
  std::vector<Time> opportunities_;
  Time period_;
  Time prop_delay_;
  Bytes buffer_bytes_;
  PacketSink* dst_;
  Bytes mtu_;

  std::size_t next_index_ = 0;
  Time cycle_base_ = 0;
  Bytes credit_ = 0;  // unused capacity does not accumulate beyond 1 MTU

  util::FifoVec<Packet> queue_;
  Bytes queued_bytes_ = 0;
  util::FifoVec<std::pair<Time, Packet>> prop_;
  Timer opp_timer_;
  Timer prop_timer_;
  LinkStats stats_;

  void on_prop_deliver();
};

// Trace generators.
namespace traces {

// Constant-rate trace: evenly spaced opportunities matching `rate` for
// MTU-sized chunks over one second.
std::vector<Time> constant_rate(Rate rate, Bytes mtu = 1500);

// Volatile cellular-like trace: the instantaneous rate follows a bounded
// random walk between `min_rate` and `max_rate`, changing every
// `step`. Returns opportunities over `period`.
std::vector<Time> random_walk(Rate min_rate, Rate max_rate, Time step,
                              Time period, Rng& rng, Bytes mtu = 1500);

} // namespace traces

} // namespace quicbench::netsim
