#pragma once
// Adversarial path impairments: a composable, deterministic stage that
// wraps any PacketSink (Link, DelayLine, TraceLink) and injects the
// non-ideal-path behaviours the droptail dumbbell cannot produce on its
// own — seeded random loss (i.i.d. and Gilbert–Elliott bursts), packet
// reordering (delay-a-packet-by-k), duplication, an RTT step change, and
// ACK-path loss. This is where the sender's RACK-style reordering
// adaptation, PTO/spurious-loss paths and BBR's loss resilience get
// exercised on purpose instead of by accident.
//
// Every random decision draws from the stage's own seeded Rng, so trials
// remain reproducible and cacheable; the ImpairmentConfig is part of the
// experiment fingerprint (runner/fingerprint.cpp).
//
// The stage never reorders packets it does not explicitly hold back: the
// extra-delay path uses monotonic release times, so with reordering
// disabled the wrapped element still sees arrival order.

#include <string>
#include <utility>
#include <vector>

#include "netsim/event.h"
#include "netsim/packet.h"
#include "util/fifo.h"
#include "util/rng.h"
#include "util/units.h"

namespace quicbench::obs {
class MetricsRegistry;
class Counter;
}  // namespace quicbench::obs

namespace quicbench::netsim {

struct ImpairmentConfig {
  // --- forward (data) path ---
  // i.i.d. loss probability per packet.
  double loss_rate = 0;
  // Gilbert–Elliott burst loss, enabled when ge_p_good_to_bad > 0: a
  // two-state Markov chain advanced per packet, dropping with
  // ge_loss_good / ge_loss_bad in the respective state. Composes with
  // loss_rate (either can drop the packet).
  double ge_loss_good = 0;
  double ge_loss_bad = 0.5;
  double ge_p_good_to_bad = 0;
  double ge_p_bad_to_good = 0.1;
  // Delay-a-packet-by-k reordering: with probability reorder_rate a
  // packet is held back and re-injected after `reorder_gap` subsequent
  // packets have passed it (or after `reorder_flush` with no traffic, so
  // a held packet can never be stranded).
  double reorder_rate = 0;
  int reorder_gap = 3;
  Time reorder_flush = time::ms(50);
  // Duplicate a packet with this probability (both copies delivered
  // back to back).
  double duplicate_rate = 0;
  // RTT step change: from `rtt_step_at` on, every packet is delayed by
  // an extra `rtt_step_delta` (a path-change event; non-negative so
  // order is preserved).
  Time rtt_step_at = 0;
  Time rtt_step_delta = 0;

  // --- reverse (ACK) path ---
  // i.i.d. loss probability per ACK.
  double ack_loss_rate = 0;

  // True when any impairment is configured; a disabled config leaves the
  // topology bit-identical to one with no stage at all.
  bool enabled() const {
    return loss_rate > 0 || ge_p_good_to_bad > 0 || reorder_rate > 0 ||
           duplicate_rate > 0 || rtt_step_delta > 0 || ack_loss_rate > 0;
  }

  // The forward-path features viewed as an ACK-path stage config:
  // ack_loss_rate becomes the i.i.d. loss, everything else is off.
  ImpairmentConfig ack_path_view() const {
    ImpairmentConfig v;
    v.loss_rate = ack_loss_rate;
    return v;
  }

  // Rejects probabilities outside [0, 1], non-positive reorder gap /
  // flush with reordering enabled, and a negative RTT step, with an
  // actionable std::invalid_argument.
  void validate() const;

  // "loss=2% reorder=1%/3 ..." for manifests; "none" when disabled.
  std::string describe() const;
};

struct ImpairmentStats {
  std::int64_t packets_in = 0;
  std::int64_t forwarded = 0;   // handed to the wrapped sink (incl. copies)
  std::int64_t dropped = 0;     // i.i.d. + Gilbert–Elliott drops
  std::int64_t duplicated = 0;  // extra copies injected
  std::int64_t reordered = 0;   // packets held back and re-injected
  std::int64_t flushed = 0;     // held packets released by the flush timer
  std::int64_t delayed = 0;     // packets given the RTT-step extra delay
};

class ImpairmentStage : public PacketSink {
 public:
  ImpairmentStage(Simulator& sim, const ImpairmentConfig& cfg,
                  PacketSink* dst, Rng rng);

  void deliver(Packet p) override;

  const ImpairmentStats& stats() const { return stats_; }
  const ImpairmentConfig& config() const { return cfg_; }

  // Packets currently held inside the stage (reorder slots + delay
  // queue) — the network-layer conservation term:
  //   packets_in + duplicated == forwarded + dropped + resident
  // which holds at every instant. Exposed for the invariant checker.
  std::int64_t packets_resident() const {
    return static_cast<std::int64_t>(held_.size() + delay_q_.size());
  }

  // Flight-recorder counters under `<prefix>.`; observation only.
  void attach_metrics(obs::MetricsRegistry& reg, const std::string& prefix);

 private:
  struct Held {
    Packet pkt;
    int remaining = 0;  // packets that must pass before release
  };

  bool roll_loss();
  void forward(Packet p);
  void on_flush();
  void release_ready_held();

  Simulator& sim_;
  ImpairmentConfig cfg_;
  PacketSink* dst_;
  Rng rng_;

  bool ge_bad_ = false;  // Gilbert–Elliott state

  // Held-back packets awaiting `remaining` passers-by. Small: bounded by
  // the number of reorder decisions within one gap window.
  std::vector<Held> held_;
  Timer flush_timer_;

  // RTT-step extra-delay queue; release times are monotonic (the extra
  // delay never decreases), so a FIFO suffices.
  util::FifoVec<std::pair<Time, Packet>> delay_q_;
  Timer delay_timer_;

  ImpairmentStats stats_;
  obs::Counter* m_dropped_ = nullptr;
  obs::Counter* m_duplicated_ = nullptr;
  obs::Counter* m_reordered_ = nullptr;
};

} // namespace quicbench::netsim
