#pragma once
// The simulated wire unit. One struct serves both data packets and ACKs;
// transport endpoints interpret the fields according to `kind`.
//
// ACKs carry a largest-acked packet number plus up to kMaxAckRanges
// received ranges (newest first), mirroring QUIC ACK frames / TCP SACK.
//
// Packets are copied by value through every queue in the simulator
// (links, delay lines, impairment stages, egress pools), so the struct
// is packed to exactly two cache lines: ack ranges are stored as 32-bit
// pn pairs behind set_range()/range() accessors (4 B pns give headroom
// for ~6 h of simulated time at line rate; asserted in debug builds),
// and kind/n_ranges/flow share one word. Time-valued fields stay 64-bit
// — ack_delay in particular can span multi-second blackout gaps.

#include <array>
#include <cassert>
#include <cstdint>

#include "util/units.h"

namespace quicbench::netsim {

enum class PacketKind : std::uint8_t { kData, kAck };

struct AckRange {
  std::uint64_t first = 0;  // inclusive
  std::uint64_t last = 0;   // inclusive
};

struct Packet {
  // --- data packet fields ---
  std::uint64_t pn = 0;   // packet number
  Time sent_time = 0;     // stamped by the sender when handed to the network
  Bytes size = 0;         // wire size in bytes (headers included)
  Bytes payload = 0;      // application payload bytes carried

  // --- ack fields ---
  std::uint64_t largest_acked = 0;
  Time ack_delay = 0;     // receiver-side delay between receipt and ack
  Time largest_recv_time = 0;  // receiver timestamp of largest acked packet

  PacketKind kind = PacketKind::kData;
  std::uint8_t n_ranges = 0;
  std::int16_t flow = -1;  // flow id; -1 for cross traffic

  static constexpr int kMaxAckRanges = 8;

  void set_range(int i, std::uint64_t first, std::uint64_t last) {
    assert(i >= 0 && i < kMaxAckRanges);
    assert(first <= last);
    assert(last <= UINT32_MAX);
    ranges_[static_cast<std::size_t>(i)] = {static_cast<std::uint32_t>(first),
                                            static_cast<std::uint32_t>(last)};
  }
  AckRange range(int i) const {
    assert(i >= 0 && i < kMaxAckRanges);
    const PackedRange& r = ranges_[static_cast<std::size_t>(i)];
    return {r.first, r.last};
  }

 private:
  struct PackedRange {
    std::uint32_t first;  // inclusive
    std::uint32_t last;   // inclusive
  };
  // Deliberately not zero-initialized: packets are constructed on the
  // per-send/per-ack hot path, and readers never touch ranges past
  // n_ranges (writers go through set_range).
  std::array<PackedRange, kMaxAckRanges> ranges_;
};

// Two cache lines; see the packing note above before adding fields.
static_assert(sizeof(Packet) == 128, "Packet must stay at two cache lines");

// Anything that can accept a packet from the network.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(Packet p) = 0;
};

} // namespace quicbench::netsim
