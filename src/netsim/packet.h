#pragma once
// The simulated wire unit. One struct serves both data packets and ACKs;
// transport endpoints interpret the fields according to `kind`.
//
// ACKs carry a largest-acked packet number plus up to kMaxAckRanges
// received ranges (newest first), mirroring QUIC ACK frames / TCP SACK.

#include <array>
#include <cstdint>

#include "util/units.h"

namespace quicbench::netsim {

enum class PacketKind : std::uint8_t { kData, kAck };

struct AckRange {
  std::uint64_t first = 0;  // inclusive
  std::uint64_t last = 0;   // inclusive
};

struct Packet {
  PacketKind kind = PacketKind::kData;
  int flow = -1;          // flow id; -1 for cross traffic
  Bytes size = 0;         // wire size in bytes (headers included)

  // --- data packet fields ---
  std::uint64_t pn = 0;   // packet number
  Bytes payload = 0;      // application payload bytes carried
  Time sent_time = 0;     // stamped by the sender when handed to the network

  // --- ack fields ---
  std::uint64_t largest_acked = 0;
  Time ack_delay = 0;     // receiver-side delay between receipt and ack
  Time largest_recv_time = 0;  // receiver timestamp of largest acked packet
  static constexpr int kMaxAckRanges = 8;
  std::array<AckRange, kMaxAckRanges> ranges{};
  int n_ranges = 0;
};

// Anything that can accept a packet from the network.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(Packet p) = 0;
};

} // namespace quicbench::netsim
