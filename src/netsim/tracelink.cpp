#include "netsim/tracelink.h"

#include <algorithm>
#include <stdexcept>

namespace quicbench::netsim {

TraceLink::TraceLink(Simulator& sim, std::vector<Time> opportunities,
                     Time period, Time prop_delay, Bytes buffer_bytes,
                     PacketSink* dst, Bytes mtu)
    : sim_(sim),
      opportunities_(std::move(opportunities)),
      period_(period),
      prop_delay_(prop_delay),
      buffer_bytes_(buffer_bytes),
      dst_(dst),
      mtu_(mtu),
      opp_timer_(sim),
      prop_timer_(sim) {
  if (opportunities_.empty() || period_ <= 0) {
    throw std::invalid_argument("TraceLink: empty trace or bad period");
  }
  for (std::size_t i = 0; i < opportunities_.size(); ++i) {
    if (opportunities_[i] < 0 || opportunities_[i] >= period_ ||
        (i > 0 && opportunities_[i] <= opportunities_[i - 1])) {
      throw std::invalid_argument("TraceLink: trace must be strictly "
                                  "increasing within [0, period)");
    }
  }
  opp_timer_.set([this] { on_opportunity(); });
  prop_timer_.set([this] { on_prop_deliver(); });
  queue_.reserve(64);
  prop_.reserve(64);
  cycle_base_ = sim_.now();
  arm_next_opportunity();
}

Rate TraceLink::average_rate() const {
  return rate_of(static_cast<Bytes>(opportunities_.size()) * mtu_, period_);
}

Time TraceLink::next_opportunity_time() const {
  return cycle_base_ + opportunities_[next_index_];
}

void TraceLink::arm_next_opportunity() {
  opp_timer_.rearm(std::max(next_opportunity_time(), sim_.now()));
}

void TraceLink::deliver(Packet p) {
  ++stats_.packets_in;
  if (queued_bytes_ + p.size > buffer_bytes_) {
    ++stats_.packets_dropped;
    return;
  }
  queued_bytes_ += p.size;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  queue_.push_back(std::move(p));
}

void TraceLink::on_opportunity() {
  // Mahimahi semantics: each opportunity delivers up to one MTU; unused
  // capacity is not banked beyond the current opportunity's credit plus
  // the residue needed to finish an oversized packet.
  credit_ = std::min<Bytes>(credit_ + mtu_, 2 * mtu_);
  while (!queue_.empty() && queue_.front().size <= credit_) {
    Packet p = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= p.size;
    credit_ -= p.size;
    ++stats_.packets_out;
    stats_.bytes_out += p.size;
    const Time arrival = sim_.now() + prop_delay_;
    prop_.emplace_back(arrival, std::move(p));
    if (!prop_timer_.armed()) prop_timer_.rearm(arrival);
  }
  if (queue_.empty()) credit_ = std::min<Bytes>(credit_, mtu_);

  // Advance the schedule.
  if (++next_index_ >= opportunities_.size()) {
    next_index_ = 0;
    cycle_base_ += period_;
  }
  arm_next_opportunity();
}

void TraceLink::on_prop_deliver() {
  Packet p = std::move(prop_.front().second);
  prop_.pop_front();
  if (!prop_.empty()) prop_timer_.rearm(prop_.front().first);
  dst_->deliver(std::move(p));
}

namespace traces {

std::vector<Time> constant_rate(Rate rate, Bytes mtu) {
  const double per_sec = rate / (static_cast<double>(mtu) * 8.0);
  const auto n = static_cast<std::size_t>(per_sec);
  std::vector<Time> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<Time>(static_cast<double>(i) * 1e9 / per_sec));
  }
  return out;
}

std::vector<Time> random_walk(Rate min_rate, Rate max_rate, Time step,
                              Time period, Rng& rng, Bytes mtu) {
  std::vector<Time> out;
  double rate = (min_rate + max_rate) / 2;
  Time t = 0;
  while (t < period) {
    // Bounded multiplicative random walk.
    rate *= 1.0 + rng.uniform(-0.25, 0.25);
    rate = std::clamp(rate, min_rate, max_rate);
    const double per_sec = rate / (static_cast<double>(mtu) * 8.0);
    const auto gap = static_cast<Time>(1e9 / per_sec);
    for (Time u = t; u < std::min(t + step, period); u += gap) {
      if (out.empty() || u > out.back()) out.push_back(u);
    }
    t += step;
  }
  return out;
}

} // namespace traces

} // namespace quicbench::netsim
