#include "trace/trace.h"

#include <algorithm>

namespace quicbench::trace {

std::vector<DTPoint> sample_series(const FlowTrace& trace, Time duration,
                                   Time base_rtt, const SamplingConfig& cfg) {
  std::vector<DTPoint> points;
  if (duration <= 0 || base_rtt <= 0) return points;

  const Time start = static_cast<Time>(static_cast<double>(duration) *
                                       cfg.truncate_fraction);
  const Time end = duration - start;
  const Time window = base_rtt * cfg.rtts_per_sample;
  if (window <= 0 || end <= start) return points;

  auto delivery_it = std::lower_bound(
      trace.deliveries.begin(), trace.deliveries.end(), start,
      [](const DeliveryRecord& r, Time t) { return r.time < t; });
  auto rtt_it = std::lower_bound(
      trace.rtt_samples.begin(), trace.rtt_samples.end(), start,
      [](const RttRecord& r, Time t) { return r.time < t; });

  for (Time t = start; t + window <= end; t += window) {
    const Time wend = t + window;
    Bytes bytes = 0;
    while (delivery_it != trace.deliveries.end() && delivery_it->time < wend) {
      bytes += delivery_it->payload;
      ++delivery_it;
    }
    double rtt_sum = 0;
    int rtt_n = 0;
    while (rtt_it != trace.rtt_samples.end() && rtt_it->time < wend) {
      rtt_sum += time::to_ms(rtt_it->rtt);
      ++rtt_n;
      ++rtt_it;
    }
    if (bytes <= 0 || rtt_n == 0) continue;
    points.push_back(DTPoint{rtt_sum / rtt_n,
                             rate::to_mbps(rate_of(bytes, window))});
  }
  return points;
}

Rate average_throughput(const FlowTrace& trace, Time t0, Time t1) {
  if (t1 <= t0) return 0;
  Bytes bytes = 0;
  for (const auto& d : trace.deliveries) {
    if (d.time >= t0 && d.time < t1) bytes += d.payload;
  }
  return rate_of(bytes, t1 - t0);
}

} // namespace quicbench::trace
