#include "trace/qlog.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>

#include "util/json.h"

namespace quicbench::trace {

QlogWriter::QlogWriter(std::string title, std::string cca_name)
    : title_(std::move(title)), cca_name_(std::move(cca_name)) {}

void QlogWriter::packet_sent(Time t, std::uint64_t pn, Bytes size,
                             bool is_retransmission) {
  events_.push_back({t, 0, pn, size, is_retransmission, 0, 0, 0, 0, 0, 0});
}

void QlogWriter::packet_received(Time t, std::uint64_t pn, Bytes size) {
  events_.push_back({t, 1, pn, size, false, 0, 0, 0, 0, 0, 0});
}

void QlogWriter::packet_lost(Time t, std::uint64_t pn) {
  events_.push_back({t, 2, pn, 0, false, 0, 0, 0, 0, 0, 0});
}

void QlogWriter::metrics_updated(Time t, Bytes cwnd, Bytes bytes_in_flight,
                                 Time smoothed_rtt) {
  events_.push_back({t, 3, 0, 0, false, cwnd, bytes_in_flight,
                     smoothed_rtt, 0, 0, 0});
}

int QlogWriter::intern_state(std::string_view name) {
  for (std::size_t i = 0; i < state_names_.size(); ++i) {
    if (state_names_[i] == name) return static_cast<int>(i);
  }
  state_names_.emplace_back(name);
  return static_cast<int>(state_names_.size()) - 1;
}

void QlogWriter::congestion_state_updated(Time t, std::string_view old_state,
                                          std::string_view new_state) {
  Event e{t, 4, 0, 0, false, 0, 0, 0, 0, 0, 0};
  e.a = intern_state(old_state);
  e.b = intern_state(new_state);
  events_.push_back(e);
}

void QlogWriter::loss_timer_updated(Time t, TimerType timer, TimerEvent event,
                                    Time expiry) {
  Event e{t, 5, 0, 0, false, 0, 0, 0, 0, 0, 0};
  e.a = static_cast<int>(timer);
  e.b = static_cast<int>(event);
  e.expiry = expiry;
  events_.push_back(e);
}

void QlogWriter::spurious_loss_detected(Time t, std::uint64_t pn) {
  events_.push_back({t, 6, pn, 0, false, 0, 0, 0, 0, 0, 0});
}

void QlogWriter::write_to(std::ostream& os) const {
  os << "{\"qlog_version\":\"0.3\",\"title\":\"" << json_escape(title_)
     << "\",\"traces\":[{\"common_fields\":{\"time_format\":"
        "\"relative\",\"reference_time\":0},\"vantage_point\":{\"type\":"
        "\"server\"},\"configuration\":{\"congestion_control\":\""
     << json_escape(cca_name_) << "\"},\"events\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ',';
    first = false;
    // Round-trip precision: `os << double` keeps only 6 significant
    // digits, which drops sub-ms resolution once timestamps pass 100 s.
    const std::string ms = json_number(time::to_ms(e.time));
    switch (e.kind) {
      case 0:
        os << "[" << ms << ",\"transport\",\"packet_sent\",{\"header\":{"
           << "\"packet_number\":" << e.pn << "},\"raw\":{\"length\":"
           << e.size << "}"
           << (e.retx ? ",\"is_retransmission\":true" : "") << "}]";
        break;
      case 1:
        os << "[" << ms << ",\"transport\",\"packet_received\",{"
           << "\"header\":{\"packet_number\":" << e.pn
           << "},\"raw\":{\"length\":" << e.size << "}}]";
        break;
      case 2:
        os << "[" << ms << ",\"recovery\",\"packet_lost\",{\"header\":{"
           << "\"packet_number\":" << e.pn << "}}]";
        break;
      case 3:
        os << "[" << ms << ",\"recovery\",\"metrics_updated\",{"
           << "\"congestion_window\":" << e.cwnd
           << ",\"bytes_in_flight\":" << e.in_flight
           << ",\"smoothed_rtt\":" << json_number(time::to_ms(e.srtt))
           << "}]";
        break;
      case 4:
        os << "[" << ms << ",\"recovery\",\"congestion_state_updated\",{"
           << "\"old\":\""
           << json_escape(state_names_[static_cast<std::size_t>(e.a)])
           << "\",\"new\":\""
           << json_escape(state_names_[static_cast<std::size_t>(e.b)])
           << "\"}]";
        break;
      case 5: {
        const char* timer_type =
            e.a == static_cast<int>(TimerType::kPto) ? "pto" : "loss";
        const char* event_type = "set";
        if (e.b == static_cast<int>(TimerEvent::kExpired)) {
          event_type = "expired";
        } else if (e.b == static_cast<int>(TimerEvent::kCancelled)) {
          event_type = "cancelled";
        }
        os << "[" << ms << ",\"recovery\",\"loss_timer_updated\",{"
           << "\"timer_type\":\"" << timer_type << "\",\"event_type\":\""
           << event_type << "\"";
        if (e.b == static_cast<int>(TimerEvent::kSet)) {
          os << ",\"delta\":" << json_number(time::to_ms(e.expiry - e.time));
        }
        os << "}]";
        break;
      }
      default:
        os << "[" << ms << ",\"recovery\",\"spurious_loss_detected\",{"
           << "\"header\":{\"packet_number\":" << e.pn << "}}]";
        break;
    }
  }
  os << "]}]}";
}

bool QlogWriter::write_file(const std::string& path,
                            std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) {
      *error = "qlog: cannot open " + path + " for writing (" +
               std::strerror(errno) + ")";
    }
    return false;
  }
  write_to(out);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "qlog: short write to " + path;
    return false;
  }
  return true;
}

} // namespace quicbench::trace
