#include "trace/qlog.h"

#include <fstream>
#include <ostream>

namespace quicbench::trace {

QlogWriter::QlogWriter(std::string title, std::string cca_name)
    : title_(std::move(title)), cca_name_(std::move(cca_name)) {}

void QlogWriter::packet_sent(Time t, std::uint64_t pn, Bytes size,
                             bool is_retransmission) {
  events_.push_back({t, 0, pn, size, is_retransmission, 0, 0, 0});
}

void QlogWriter::packet_received(Time t, std::uint64_t pn, Bytes size) {
  events_.push_back({t, 1, pn, size, false, 0, 0, 0});
}

void QlogWriter::packet_lost(Time t, std::uint64_t pn) {
  events_.push_back({t, 2, pn, 0, false, 0, 0, 0});
}

void QlogWriter::metrics_updated(Time t, Bytes cwnd, Bytes bytes_in_flight,
                                 Time smoothed_rtt) {
  events_.push_back({t, 3, 0, 0, false, cwnd, bytes_in_flight,
                     smoothed_rtt});
}

void QlogWriter::write_to(std::ostream& os) const {
  os << "{\"qlog_version\":\"0.3\",\"title\":\"" << title_
     << "\",\"traces\":[{\"common_fields\":{\"time_format\":"
        "\"relative\",\"reference_time\":0},\"vantage_point\":{\"type\":"
        "\"server\"},\"configuration\":{\"congestion_control\":\""
     << cca_name_ << "\"},\"events\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ',';
    first = false;
    const double ms = time::to_ms(e.time);
    switch (e.kind) {
      case 0:
        os << "[" << ms << ",\"transport\",\"packet_sent\",{\"header\":{"
           << "\"packet_number\":" << e.pn << "},\"raw\":{\"length\":"
           << e.size << "}"
           << (e.retx ? ",\"is_retransmission\":true" : "") << "}]";
        break;
      case 1:
        os << "[" << ms << ",\"transport\",\"packet_received\",{"
           << "\"header\":{\"packet_number\":" << e.pn
           << "},\"raw\":{\"length\":" << e.size << "}}]";
        break;
      case 2:
        os << "[" << ms << ",\"recovery\",\"packet_lost\",{\"header\":{"
           << "\"packet_number\":" << e.pn << "}}]";
        break;
      default:
        os << "[" << ms << ",\"recovery\",\"metrics_updated\",{"
           << "\"congestion_window\":" << e.cwnd
           << ",\"bytes_in_flight\":" << e.in_flight
           << ",\"smoothed_rtt\":" << time::to_ms(e.srtt) << "}]";
        break;
    }
  }
  os << "]}]}";
}

bool QlogWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_to(out);
  return static_cast<bool>(out);
}

} // namespace quicbench::trace
