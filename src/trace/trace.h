#pragma once
// Flow traces and the offline measurement pipeline of §3.1: each flow's
// packet-level delivery and RTT events are recorded during the run, then
// converted to a throughput/delay time series that is truncated by 10% at
// both ends and sampled every 10 RTTs into (delay, throughput) pairs.

#include <vector>

#include "util/units.h"

namespace quicbench::trace {

struct DeliveryRecord {
  Time time = 0;
  Bytes payload = 0;
};

struct RttRecord {
  Time time = 0;
  Time rtt = 0;
};

struct CwndRecord {
  Time time = 0;
  Bytes cwnd = 0;
  Bytes bytes_in_flight = 0;
};

struct FlowTrace {
  std::vector<DeliveryRecord> deliveries;  // receiver-side
  std::vector<RttRecord> rtt_samples;      // sender-side
  std::vector<CwndRecord> cwnd_samples;    // sender-side (optional)

  void record_delivery(Time t, Bytes payload) {
    deliveries.push_back({t, payload});
  }
  void record_rtt(Time t, Time rtt) { rtt_samples.push_back({t, rtt}); }
  void record_cwnd(Time t, Bytes cwnd, Bytes in_flight) {
    cwnd_samples.push_back({t, cwnd, in_flight});
  }

  Bytes total_delivered() const {
    Bytes sum = 0;
    for (const auto& d : deliveries) sum += d.payload;
    return sum;
  }
};

// A sampled (delay, throughput) pair: one point of a Performance Envelope
// point cloud.
struct DTPoint {
  double delay_ms = 0;
  double tput_mbps = 0;
};

struct SamplingConfig {
  double truncate_fraction = 0.10;  // drop this share at each end
  int rtts_per_sample = 10;         // sampling period in base RTTs
};

// Convert a trace covering [0, duration] into (delay, throughput) samples.
// Windows with no delivered data or no RTT samples are skipped (they carry
// no information about the steady-state trade-off).
std::vector<DTPoint> sample_series(const FlowTrace& trace, Time duration,
                                   Time base_rtt,
                                   const SamplingConfig& cfg = {});

// Mean delivered throughput (bits/sec) over [t0, t1].
Rate average_throughput(const FlowTrace& trace, Time t0, Time t1);

} // namespace quicbench::trace
