#pragma once
// qlog-style structured event export (draft-ietf-quic-qlog). The QUIC
// ecosystem's debugging workflow (qvis, the tool behind Marx et al.'s
// speciation study) consumes JSON event streams of packet and
// congestion-control events; this writer produces a compatible subset so
// simulated flows can be inspected with the same tooling used on real
// stacks.
//
// Events emitted per flow:
//   transport:packet_sent             (pn, size, retransmission flag)
//   transport:packet_received         (pn, size)
//   recovery:packet_lost              (pn)
//   recovery:metrics_updated          (cwnd, bytes_in_flight, smoothed_rtt)
//   recovery:congestion_state_updated (old, new — CCA phase transitions)
//   recovery:loss_timer_updated       (timer type, set/expired/cancelled)
//   recovery:spurious_loss_detected   (pn — lost-marked packet later acked)
//
// The writer buffers events and serialises on `write_to` — experiments
// are finished before any I/O happens, so logging never perturbs timing.
// Titles and CCA names pass through json_escape, so arbitrary display
// strings cannot corrupt the document.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace quicbench::trace {

class QlogWriter {
 public:
  // Timer identity / lifecycle for loss_timer_updated events.
  enum class TimerType { kLossDetection, kPto };
  enum class TimerEvent { kSet, kExpired, kCancelled };

  QlogWriter(std::string title, std::string cca_name);

  void packet_sent(Time t, std::uint64_t pn, Bytes size,
                   bool is_retransmission);
  void packet_received(Time t, std::uint64_t pn, Bytes size);
  void packet_lost(Time t, std::uint64_t pn);
  void metrics_updated(Time t, Bytes cwnd, Bytes bytes_in_flight,
                       Time smoothed_rtt);
  // CCA phase transition (e.g. slow_start -> congestion_avoidance,
  // startup -> drain). States are interned; arbitrary names are fine.
  void congestion_state_updated(Time t, std::string_view old_state,
                                std::string_view new_state);
  // Loss-detection / PTO timer lifecycle. `expiry` is only meaningful for
  // kSet.
  void loss_timer_updated(Time t, TimerType timer, TimerEvent event,
                          Time expiry = 0);
  void spurious_loss_detected(Time t, std::uint64_t pn);

  std::size_t event_count() const { return events_.size(); }

  // Serialise the full qlog JSON document.
  void write_to(std::ostream& os) const;
  // Convenience: write to a file; false on I/O failure, with the failing
  // path reported through `error` when provided.
  bool write_file(const std::string& path,
                  std::string* error = nullptr) const;

 private:
  struct Event {
    Time time;
    // 0 = sent, 1 = received, 2 = lost, 3 = metrics, 4 = congestion
    // state, 5 = loss timer, 6 = spurious loss
    int kind;
    std::uint64_t pn = 0;
    Bytes size = 0;
    bool retx = false;
    Bytes cwnd = 0;
    Bytes in_flight = 0;
    Time srtt = 0;
    // kind 4: interned state names; kind 5: timer type / event.
    int a = 0;
    int b = 0;
    Time expiry = 0;
  };

  int intern_state(std::string_view name);

  std::string title_;
  std::string cca_name_;
  std::vector<std::string> state_names_;
  std::vector<Event> events_;
};

} // namespace quicbench::trace
