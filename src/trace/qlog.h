#pragma once
// qlog-style structured event export (draft-ietf-quic-qlog). The QUIC
// ecosystem's debugging workflow (qvis, the tool behind Marx et al.'s
// speciation study) consumes JSON event streams of packet and
// congestion-control events; this writer produces a compatible subset so
// simulated flows can be inspected with the same tooling used on real
// stacks.
//
// Events emitted per flow:
//   transport:packet_sent        (pn, size, retransmission flag)
//   transport:packet_received    (pn, size)
//   recovery:packet_lost         (pn)
//   recovery:metrics_updated     (cwnd, bytes_in_flight, smoothed_rtt)
//
// The writer buffers events and serialises on `write_to` — experiments
// are finished before any I/O happens, so logging never perturbs timing.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/units.h"

namespace quicbench::trace {

class QlogWriter {
 public:
  QlogWriter(std::string title, std::string cca_name);

  void packet_sent(Time t, std::uint64_t pn, Bytes size,
                   bool is_retransmission);
  void packet_received(Time t, std::uint64_t pn, Bytes size);
  void packet_lost(Time t, std::uint64_t pn);
  void metrics_updated(Time t, Bytes cwnd, Bytes bytes_in_flight,
                       Time smoothed_rtt);

  std::size_t event_count() const { return events_.size(); }

  // Serialise the full qlog JSON document.
  void write_to(std::ostream& os) const;
  // Convenience: write to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct Event {
    Time time;
    // 0 = sent, 1 = received, 2 = lost, 3 = metrics
    int kind;
    std::uint64_t pn = 0;
    Bytes size = 0;
    bool retx = false;
    Bytes cwnd = 0;
    Bytes in_flight = 0;
    Time srtt = 0;
  };

  std::string title_;
  std::string cca_name_;
  std::vector<Event> events_;
};

} // namespace quicbench::trace
