#include "transport/receiver.h"

#include <algorithm>

#include "obs/attrib.h"

namespace quicbench::transport {

using netsim::AckRange;
using netsim::Packet;
using netsim::PacketKind;

ReceiverEndpoint::ReceiverEndpoint(netsim::Simulator& sim, int flow,
                                   ReceiverProfile profile,
                                   netsim::PacketSink* reverse_path)
    : sim_(sim),
      flow_(flow),
      profile_(profile),
      reverse_(reverse_path),
      ack_delay_timer_(sim) {
  ack_delay_timer_.set([this] { send_ack(); });
}

void ReceiverEndpoint::note_received(std::uint64_t pn) {
  // Find insertion point: ranges_ ascending by first.
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), pn,
      [](const AckRange& r, std::uint64_t v) { return r.last < v; });
  if (it != ranges_.end() && pn >= it->first && pn <= it->last) {
    ++stats_.duplicate_packets;
    return;
  }
  // Try to extend a neighbour.
  const bool extends_prev =
      it != ranges_.begin() && std::prev(it)->last + 1 == pn;
  const bool extends_next = it != ranges_.end() && it->first == pn + 1;
  if (extends_prev && extends_next) {
    std::prev(it)->last = it->last;
    ranges_.erase(it);
  } else if (extends_prev) {
    std::prev(it)->last = pn;
  } else if (extends_next) {
    it->first = pn;
  } else {
    ranges_.insert(it, AckRange{pn, pn});
  }
  if (ranges_.size() > kMaxTrackedRanges) {
    ranges_.erase(ranges_.begin());  // forget the oldest gap
  }
}

void ReceiverEndpoint::deliver(Packet p) {
  if (p.kind != PacketKind::kData || p.flow != flow_) return;
  QB_ATTRIB_SCOPE(kReceiver);
  const Time now = sim_.now();

  ++stats_.packets_received;
  stats_.bytes_received += p.payload;
  // RFC 9000 §13.2.1: ack immediately for any out-of-order packet — one
  // that leaves a gap *or* fills one.
  const bool out_of_order = any_received_ && p.pn != largest_pn_ + 1;
  note_received(p.pn);
  if (!any_received_ || p.pn > largest_pn_) {
    largest_pn_ = p.pn;
    largest_recv_time_ = now;
  }
  any_received_ = true;

  if (delivery_cb_) delivery_cb_(now, p.payload, now - p.sent_time);
  if (packet_cb_) packet_cb_(now, p.pn, p.size);

  ++unacked_data_packets_;
  const bool immediate =
      unacked_data_packets_ >= profile_.ack_every_n ||
      (profile_.ack_on_gap && (has_gap() || out_of_order));
  if (immediate) {
    send_ack();
  } else if (!ack_delay_timer_.armed()) {
    ack_delay_timer_.rearm_in(profile_.max_ack_delay);
  }
}

void ReceiverEndpoint::send_ack() {
  if (!any_received_) return;
  ack_delay_timer_.cancel();
  unacked_data_packets_ = 0;

  Packet ack;
  ack.kind = PacketKind::kAck;
  ack.flow = static_cast<std::int16_t>(flow_);
  ack.size = kAckWireSize;
  ack.largest_acked = ranges_.back().last;
  ack.ack_delay = sim_.now() - largest_recv_time_;
  ack.largest_recv_time = largest_recv_time_;
  // Newest ranges first, up to the frame capacity.
  int n = 0;
  for (auto it = ranges_.rbegin();
       it != ranges_.rend() && n < Packet::kMaxAckRanges; ++it) {
    ack.set_range(n++, it->first, it->last);
  }
  ack.n_ranges = static_cast<std::uint8_t>(n);

  ++stats_.acks_sent;
  reverse_->deliver(std::move(ack));
}

} // namespace quicbench::transport
