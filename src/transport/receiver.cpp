#include "transport/receiver.h"

#include <algorithm>
#include <cassert>

#include "obs/attrib.h"

namespace quicbench::transport {

using netsim::AckRange;
using netsim::Packet;
using netsim::PacketKind;

ReceiverEndpoint::ReceiverEndpoint(netsim::Simulator& sim, int flow,
                                   ReceiverProfile profile,
                                   netsim::PacketSink* reverse_path)
    : sim_(sim),
      flow_(flow),
      profile_(profile),
      reverse_(reverse_path),
      ack_delay_timer_(sim) {
  ack_delay_timer_.set([this] { send_ack(); });
}

void ReceiverEndpoint::note_received(std::uint64_t pn) {
  // O(1) fast paths against the newest range: the in-order append (the
  // overwhelmingly common case) and the duplicate-of-recent case. Both
  // produce exactly the state the general path below would: for
  // pn == back.last + 1 the lower_bound lands at end() and only
  // extends_prev holds; for pn inside the back range the search finds
  // it and counts a duplicate.
  if (!ranges_.empty()) {
    AckRange& back = ranges_.back();
    if (pn == back.last + 1) {
      back.last = pn;
      return;
    }
    if (pn >= back.first && pn <= back.last) {
      ++stats_.duplicate_packets;
      return;
    }
  }
  // Find insertion point: ranges_ ascending by first.
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), pn,
      [](const AckRange& r, std::uint64_t v) { return r.last < v; });
  if (it != ranges_.end() && pn >= it->first && pn <= it->last) {
    ++stats_.duplicate_packets;
    return;
  }
  // Try to extend a neighbour.
  const bool extends_prev =
      it != ranges_.begin() && std::prev(it)->last + 1 == pn;
  const bool extends_next = it != ranges_.end() && it->first == pn + 1;
  if (extends_prev && extends_next) {
    std::prev(it)->last = it->last;
    ranges_.erase(it);
  } else if (extends_prev) {
    std::prev(it)->last = pn;
  } else if (extends_next) {
    it->first = pn;
  } else {
    ranges_.insert(it, AckRange{pn, pn});
  }
  if (ranges_.size() > kMaxTrackedRanges) {
    ranges_.erase(ranges_.begin());  // forget the oldest gap
  }
}

void ReceiverEndpoint::deliver(Packet p) {
  if (p.kind != PacketKind::kData || p.flow != flow_) return;
  QB_ATTRIB_SCOPE(kReceiver);
  const Time now = sim_.now();

  if (dup_stash_valid_ && now == dup_stash_time_ && p.pn == dup_stash_pn_) {
    // Same-tick duplicate of the packet whose immediate ACK we just
    // sent: receiver state cannot change (the pn is covered by the
    // newest range, which eviction never drops, and pn <= largest), and
    // the full path would rebuild the exact ACK frame we stashed (same
    // tick, same ranges, same largest_recv_time). Replay it.
#ifndef NDEBUG
    {
      // Re-prove the no-op: the pn really is a duplicate and the frame
      // the full path would build matches the stash byte for byte.
      const auto it = std::lower_bound(
          ranges_.begin(), ranges_.end(), p.pn,
          [](const AckRange& r, std::uint64_t v) { return r.last < v; });
      assert(it != ranges_.end() && p.pn >= it->first && p.pn <= it->last);
      assert(p.pn <= largest_pn_ && any_received_);
      const Packet again = build_ack();
      assert(again.largest_acked == dup_stash_ack_.largest_acked);
      assert(again.ack_delay == dup_stash_ack_.ack_delay);
      assert(again.largest_recv_time == dup_stash_ack_.largest_recv_time);
      assert(again.n_ranges == dup_stash_ack_.n_ranges);
      for (int i = 0; i < again.n_ranges; ++i) {
        assert(again.range(i).first == dup_stash_ack_.range(i).first);
        assert(again.range(i).last == dup_stash_ack_.range(i).last);
      }
    }
#endif
    ++stats_.packets_received;
    stats_.bytes_received += p.payload;
    ++stats_.duplicate_packets;
    ++stats_.dups_coalesced;
    if (delivery_cb_) delivery_cb_(now, p.payload, now - p.sent_time);
    if (packet_cb_) packet_cb_(now, p.pn, p.size);
    // The full path would take the immediate-ack branch (a duplicate is
    // always out of order, and the stash exists only under ack_on_gap):
    // cancel (already idle), reset the unacked count, resend.
    ack_delay_timer_.cancel();
    unacked_data_packets_ = 0;
    ++stats_.acks_sent;
    Packet ack = dup_stash_ack_;
    reverse_->deliver(std::move(ack));
    // State is unchanged; the stash stays good while same-tick work
    // remains pending.
    dup_stash_valid_ = sim_.has_pending_event_at_now();
    return;
  }
  dup_stash_valid_ = false;

  ++stats_.packets_received;
  stats_.bytes_received += p.payload;
  // RFC 9000 §13.2.1: ack immediately for any out-of-order packet — one
  // that leaves a gap *or* fills one.
  const bool out_of_order = any_received_ && p.pn != largest_pn_ + 1;
  note_received(p.pn);
  if (!any_received_ || p.pn > largest_pn_) {
    largest_pn_ = p.pn;
    largest_recv_time_ = now;
  }
  any_received_ = true;

  if (delivery_cb_) delivery_cb_(now, p.payload, now - p.sent_time);
  if (packet_cb_) packet_cb_(now, p.pn, p.size);

  ++unacked_data_packets_;
  const bool immediate =
      unacked_data_packets_ >= profile_.ack_every_n ||
      (profile_.ack_on_gap && (has_gap() || out_of_order));
  if (immediate) {
    send_ack();
    // Arm the duplicate stash: only for the current largest pn (always
    // inside the newest tracked range, which eviction never touches),
    // only when a same-tick re-delivery would itself immediate-ack
    // (ack_on_gap — a duplicate is always out of order), and only while
    // the engine still has same-tick work pending.
    if (coalesce_same_tick_dups_ && profile_.ack_on_gap &&
        p.pn == largest_pn_ && sim_.has_pending_event_at_now()) {
      dup_stash_valid_ = true;
      dup_stash_pn_ = p.pn;
      dup_stash_time_ = now;
      dup_stash_ack_ = last_ack_;
    }
  } else if (!ack_delay_timer_.armed()) {
    ack_delay_timer_.rearm_in(profile_.max_ack_delay);
  }
}

Packet ReceiverEndpoint::build_ack() const {
  Packet ack;
  ack.kind = PacketKind::kAck;
  ack.flow = static_cast<std::int16_t>(flow_);
  ack.size = kAckWireSize;
  ack.largest_acked = ranges_.back().last;
  ack.ack_delay = sim_.now() - largest_recv_time_;
  ack.largest_recv_time = largest_recv_time_;
  // Newest ranges first, up to the frame capacity.
  int n = 0;
  for (auto it = ranges_.rbegin();
       it != ranges_.rend() && n < Packet::kMaxAckRanges; ++it) {
    ack.set_range(n++, it->first, it->last);
  }
  ack.n_ranges = static_cast<std::uint8_t>(n);
  return ack;
}

void ReceiverEndpoint::send_ack() {
  if (!any_received_) return;
  ack_delay_timer_.cancel();
  unacked_data_packets_ = 0;
  Packet ack = build_ack();
  if (coalesce_same_tick_dups_) last_ack_ = ack;
  ++stats_.acks_sent;
  reverse_->deliver(std::move(ack));
}

} // namespace quicbench::transport
