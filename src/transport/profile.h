#pragma once
// Stack profiles: everything about a TCP or QUIC stack's transport
// machinery that is *not* the congestion control algorithm — packet
// sizing, initial window, pacing policy, ACK policy, loss-detection
// thresholds, and the stack-level artifacts (flow-control caps, send
// batching, egress jitter) that the paper identifies as sources of
// non-conformance independent of the CCA (§5, "Indications of wider
// stack-level issues").

#include <string>

#include "util/units.h"

namespace quicbench::transport {

enum class TimeThresholdBase {
  kSmoothedOrLatest,  // RFC 9002: max(smoothed_rtt, latest_rtt)
  kMinRtt,            // aggressive: min_rtt (misfires when queues build)
};

enum class LossDetection {
  // RFC 9002: packet threshold (kPacketThreshold=3) OR time threshold
  // (9/8 x max(srtt, latest)), whichever fires first.
  kRfc9002,
  // RACK-TLP (RFC 8985): purely time-based — a packet is lost once one
  // sent after it is delivered and a reordering window (a fraction of
  // min_rtt, widened on observed reordering) has elapsed past its send
  // time. The packet-count threshold is disabled entirely, and the first
  // retransmission probe is a TLP (2*srtt) instead of a full PTO.
  kRackTlp,
};

struct SenderProfile {
  // Packetization. TCP: 1448-byte MSS + 52B headers. QUIC: smaller UDP
  // payload + UDP/IP/QUIC overhead.
  Bytes mss = 1448;
  Bytes header_overhead = 52;
  Bytes ack_packet_size = 80;

  int initial_cwnd_packets = 10;
  Bytes min_cwnd_packets = 2;

  // Pacing. Kernel CUBIC/Reno are ack-clocked (no pacing); most QUIC
  // stacks pace window-based CCAs at `window_pacing_factor x cwnd/srtt`.
  // Rate-based CCAs (BBR) always use the CCA-provided pacing rate.
  bool pace_window_ccas = false;
  double window_pacing_factor = 1.25;
  int pacing_burst_packets = 2;

  // Loss detection (RFC 9002 defaults).
  LossDetection loss_detection = LossDetection::kRfc9002;
  int packet_reorder_threshold = 3;
  double time_reorder_fraction = 9.0 / 8.0;
  TimeThresholdBase time_threshold_base = TimeThresholdBase::kSmoothedOrLatest;
  // RACK-style adaptation: each detected spurious loss widens the packet
  // reorder threshold (up to the cap) so persistent reordering stops
  // triggering false losses.
  bool adapt_reorder_threshold = true;
  int max_packet_reorder_threshold = 16;
  // RACK-TLP knobs (used when loss_detection == kRackTlp). The reordering
  // window starts at `rack_reo_wnd_fraction * min_rtt` and doubles per
  // observed spurious loss up to `rack_max_reo_wnd_mult` multiples; the
  // first tail probe fires after `tlp_srtt_factor * srtt + max_ack_delay`.
  double rack_reo_wnd_fraction = 0.25;
  int rack_max_reo_wnd_mult = 16;
  double tlp_srtt_factor = 2.0;

  // PTO
  Time max_ack_delay_assumed = time::ms(25);
  int persistent_congestion_ptos = 3;

  // --- stack artifacts ---
  // Connection-level flow control: caps bytes in flight (0 = unlimited).
  Bytes flow_control_window = 0;
  // Egress processing jitter: each packet's hand-off to the network is
  // delayed by uniform [0, egress_jitter]; if `egress_reorder`, packets
  // may overtake each other (multi-threaded / batched sendmsg artifacts).
  Time egress_jitter = 0;
  bool egress_reorder = false;
  // Send-loop batching: the sender only wakes to transmit every
  // `send_quantum` (0 = event-driven, no batching).
  Time send_quantum = 0;

  std::string describe() const;
};

struct ReceiverProfile {
  // Ack frequency: ack every Nth data packet (kernel TCP delayed ack and
  // the QUIC recommendation are both 2; several stacks deviate, cf. Marx
  // et al.).
  int ack_every_n = 2;
  Time max_ack_delay = time::ms(25);
  // Ack immediately when a gap is observed (all stacks do).
  bool ack_on_gap = true;
};

struct StackProfile {
  SenderProfile sender;
  ReceiverProfile receiver;
};

// Canonical profiles.
StackProfile kernel_tcp_profile();   // the reference: Linux TCP
StackProfile default_quic_profile(); // RFC-faithful IETF QUIC stack

} // namespace quicbench::transport
