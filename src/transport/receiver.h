#pragma once
// Receiver endpoint: records delivered data for the trace pipeline and
// generates ACK frames per the stack's ACK policy (ack-every-N with a
// max-ack-delay timer, immediate ack on gaps).

#include <vector>

#include "netsim/event.h"
#include "netsim/packet.h"
#include "transport/profile.h"
#include "util/inline_fn.h"
#include "util/units.h"

namespace quicbench::transport {

struct ReceiverStats {
  std::int64_t packets_received = 0;
  Bytes bytes_received = 0;
  std::int64_t acks_sent = 0;
  std::int64_t duplicate_packets = 0;
  // Duplicates absorbed by the same-tick stash: counted in
  // duplicate_packets as well, like any other duplicate.
  std::int64_t dups_coalesced = 0;
};

class ReceiverEndpoint : public netsim::PacketSink {
 public:
  ReceiverEndpoint(netsim::Simulator& sim, int flow, ReceiverProfile profile,
                   netsim::PacketSink* reverse_path);

  void deliver(netsim::Packet p) override;

  // Called for every delivered data packet with the payload size and the
  // one-way delay the packet experienced.
  using DeliveryCallback =
      util::InlineFn<void(Time now, Bytes payload, Time one_way_delay)>;
  void set_delivery_callback(DeliveryCallback cb) {
    delivery_cb_ = std::move(cb);
  }

  // Per-packet hook with the packet number (qlog export).
  using PacketCallback =
      util::InlineFn<void(Time now, std::uint64_t pn, Bytes size)>;
  void set_packet_callback(PacketCallback cb) { packet_cb_ = std::move(cb); }

  const ReceiverStats& stats() const { return stats_; }

  // Opt-in mirror of the sender's same-tick ACK coalescing (PR 8): when
  // the duplication impairment re-delivers the packet the receiver just
  // immediate-acked within the same tick, the receiver replays the
  // byte-identical ACK it stashed instead of re-running the range search
  // and frame build. Gated on the engine's has_pending_event_at_now
  // probe (a stash is only kept while a same-tick follower can exist)
  // and re-proved as a no-op by a debug assert. Off by default; every
  // observable (stats, callbacks, the emitted packet bytes, timer state)
  // is identical either way, so event counts do not change.
  void set_coalesce_same_tick_dups(bool on) {
    coalesce_same_tick_dups_ = on;
    if (!on) dup_stash_valid_ = false;
  }

 private:
  void note_received(std::uint64_t pn);
  bool has_gap() const { return ranges_.size() > 1; }
  netsim::Packet build_ack() const;
  void send_ack();

  netsim::Simulator& sim_;
  int flow_;
  ReceiverProfile profile_;
  netsim::PacketSink* reverse_;

  // Received packet-number ranges, ascending, coalesced.
  std::vector<netsim::AckRange> ranges_;
  std::uint64_t largest_pn_ = 0;
  Time largest_recv_time_ = 0;
  bool any_received_ = false;

  int unacked_data_packets_ = 0;
  netsim::Timer ack_delay_timer_;

  ReceiverStats stats_;
  DeliveryCallback delivery_cb_;
  PacketCallback packet_cb_;

  // Same-tick duplicate stash (see set_coalesce_same_tick_dups). Valid
  // only when the last full-path delivery immediate-acked the current
  // largest pn at dup_stash_time_ with more same-tick work pending.
  bool coalesce_same_tick_dups_ = false;
  bool dup_stash_valid_ = false;
  std::uint64_t dup_stash_pn_ = 0;
  Time dup_stash_time_ = 0;
  netsim::Packet dup_stash_ack_;
  // Copy of the most recent ACK frame (maintained only while coalescing
  // is on; the stash arms from it after an immediate ack).
  netsim::Packet last_ack_;

  static constexpr std::size_t kMaxTrackedRanges = 64;
  static constexpr Bytes kAckWireSize = 80;
};

} // namespace quicbench::transport
