#pragma once
// Bulk-transfer sender endpoint: the simulated equivalent of an iperf3 TCP
// sender or a QUIC stack's test server pushing an unbounded stream.
//
// Responsibilities:
//   - packetize an infinite stream into MSS-sized packets
//   - obey the congestion controller's cwnd and pacing rate
//   - RFC 9002-style loss detection (packet threshold + time threshold),
//     probe timeouts, persistent congestion
//   - spurious-loss detection (a lost-marked packet later acked), which
//     feeds the RFC 8312bis rollback logic in the quiche CUBIC variant
//   - stack artifacts per SenderProfile: flow-control caps, egress jitter,
//     send-loop batching

#include <memory>
#include <vector>

#include "cca/cca.h"
#include "netsim/event.h"
#include "netsim/packet.h"
#include "transport/profile.h"
#include "transport/rtt.h"
#include "transport/sent_log.h"
#include "util/inline_fn.h"
#include "util/rng.h"
#include "util/units.h"

namespace quicbench::transport {

struct SenderStats {
  std::int64_t packets_sent = 0;
  Bytes bytes_sent = 0;
  std::int64_t retransmissions = 0;
  std::int64_t losses_detected = 0;
  std::int64_t loss_events = 0;  // batched on_loss deliveries to the CCA
  std::int64_t spurious_losses = 0;
  std::int64_t ptos_fired = 0;
  std::int64_t persistent_congestion_events = 0;
  // Same-tick duplicate ACK frames absorbed without reprocessing (only
  // moves when same-tick coalescing is opted in; see
  // set_coalesce_same_tick_acks).
  std::int64_t acks_coalesced = 0;
};

class SenderEndpoint : public netsim::PacketSink {
 public:
  SenderEndpoint(netsim::Simulator& sim, int flow, SenderProfile profile,
                 std::unique_ptr<cca::CongestionController> controller,
                 netsim::PacketSink* network, Rng rng);

  // Begin transmitting at absolute simulation time `at`.
  void start(Time at);

  // Cap the stream at `limit` payload bytes of new data (retransmissions
  // and probes do not count); <= 0 keeps the default unbounded stream.
  // Must be set before start(). Once the cap is reached and every sent
  // packet has been resolved, the flow finishes: all timers stop and the
  // finished callback (if any) fires. An unlimited sender takes none of
  // these branches, so its event sequence is bit-identical to builds
  // without the cap.
  void set_data_limit(Bytes limit) { data_limit_ = limit; }
  bool finished() const { return finished_; }
  Bytes new_data_bytes() const { return new_data_bytes_; }

  // ACK arrival from the network.
  void deliver(netsim::Packet p) override;

  // Opt-in same-tick ACK coalescing: when the network delivers the same
  // ACK frame again at the same simulation time with no intervening
  // sender activity (duplication impairment does exactly this), the
  // repeat is provably a no-op — everything it covers was resolved by
  // the first copy — so it is absorbed without re-walking the
  // scoreboard. Only byte-identical frames coalesce, the decision is a
  // pure function of simulator state (deterministic), and a debug
  // assert re-proves the no-op claim on every skip. Disabled whenever a
  // loss-timer observer is installed: reprocessing a duplicate re-emits
  // a (redundant) timer-set notification that qlog traces record, and
  // coalescing must not change any observer's byte stream.
  void set_coalesce_same_tick_acks(bool on) { coalesce_acks_ = on; }

  // Observability hooks for the trace module.
  using RttCallback = util::InlineFn<void(Time now, Time rtt)>;
  using CwndCallback =
      util::InlineFn<void(Time now, Bytes cwnd, Bytes bytes_in_flight)>;
  using PacketSentCallback = util::InlineFn<void(
      Time now, std::uint64_t pn, Bytes size, bool is_retransmission)>;
  // Fires when a pn leaves the flight via a (non-spurious) ack, after
  // bytes_in_flight is decremented; spurious acks fire the spurious-loss
  // callback instead. Together with sent/lost this makes the packet
  // ledger observable (invariant checker).
  using PacketAckedCallback =
      util::InlineFn<void(Time now, std::uint64_t pn, Bytes size)>;
  using PacketLostCallback = util::InlineFn<void(Time now, std::uint64_t pn)>;
  // Loss-detection / PTO timer lifecycle, for the flight recorder. The
  // `expiry` argument is only meaningful for kSet.
  enum class LossTimerKind { kLossDetection, kPto };
  enum class LossTimerEvent { kSet, kExpired, kCancelled };
  using TimerCallback = util::InlineFn<void(Time now, LossTimerKind kind,
                                            LossTimerEvent event, Time expiry)>;
  using PtoCallback = util::InlineFn<void(Time now, int pto_count)>;
  using SpuriousLossCallback = util::InlineFn<void(Time now, std::uint64_t pn)>;
  // Fires once, when a data-limited flow has sent its full limit and the
  // last outstanding packet resolved (flow departure, for churn studies).
  using FinishedCallback = util::InlineFn<void(Time now)>;
  void set_rtt_callback(RttCallback cb) { rtt_cb_ = std::move(cb); }
  void set_cwnd_callback(CwndCallback cb) { cwnd_cb_ = std::move(cb); }
  void set_packet_sent_callback(PacketSentCallback cb) {
    sent_cb_ = std::move(cb);
  }
  void set_packet_acked_callback(PacketAckedCallback cb) {
    acked_cb_ = std::move(cb);
  }
  void set_packet_lost_callback(PacketLostCallback cb) {
    lost_cb_ = std::move(cb);
  }
  void set_timer_callback(TimerCallback cb) { timer_cb_ = std::move(cb); }
  void set_pto_callback(PtoCallback cb) { pto_cb_ = std::move(cb); }
  void set_spurious_loss_callback(SpuriousLossCallback cb) {
    spurious_cb_ = std::move(cb);
  }
  void set_finished_callback(FinishedCallback cb) {
    finished_cb_ = std::move(cb);
  }

  const SenderStats& stats() const { return stats_; }
  const cca::CongestionController& controller() const { return *cca_; }
  cca::CongestionController& controller() { return *cca_; }
  Bytes bytes_in_flight() const { return bytes_in_flight_; }
  const RttEstimator& rtt() const { return rtt_; }
  int flow() const { return flow_; }
  // Current RACK-style packet-reorder threshold (adapts upward on
  // spurious losses when the profile allows it).
  int reorder_threshold() const { return reorder_threshold_; }
  // Current RACK reordering-window multiplier (kRackTlp profiles only).
  int rack_reo_mult() const { return rack_reo_mult_; }
  // Scoreboard work counters (amortization tests).
  const ScoreboardCounters& scoreboard_counters() const {
    return log_.counters();
  }
  // Read-only scoreboard view (equivalence tests compare per-pn flags
  // between the batched and scalar ack paths).
  const SentLog& sent_log() const { return log_; }

 private:
  void compact_sent_log();

  void on_ack_frame(const netsim::Packet& ack);
  void assert_duplicate_is_noop(const netsim::Packet& dup);
  void detect_losses();
  void arm_loss_timer();
  void arm_pto();
  void on_pto();
  void declare_persistent_congestion();

  void maybe_send();
  void do_send_loop();
  void send_one(bool is_probe);
  // True once a data-limited flow has packetized its whole limit and has
  // no retransmissions pending. Always false for unlimited flows.
  bool out_of_data() const {
    return data_limit_ > 0 && new_data_bytes_ >= data_limit_ &&
           pending_retx_bytes_ <= 0;
  }
  void maybe_finish();
  Time loss_time_threshold() const;
  std::optional<Time> pacing_interval(Bytes wire, Bytes cwnd);

  netsim::Simulator& sim_;
  int flow_;
  SenderProfile profile_;
  std::unique_ptr<cca::CongestionController> cca_;
  netsim::PacketSink* network_;
  Rng rng_;

  bool started_ = false;
  bool finished_ = false;
  Bytes data_limit_ = 0;      // <= 0: unbounded stream
  Bytes new_data_bytes_ = 0;  // payload bytes of new (non-retx) data sent
  // Packet scoreboard: SoA metadata ring plus the intrusive unresolved
  // list of live gaps below the largest processed ack; lost-but-within-
  // grace pns sit in the log's sorted lost set instead, so per-ack work
  // stays O(live gaps + covered losses).
  SentLog log_;
  std::uint64_t largest_acked_ = 0;
  bool any_acked_ = false;

  // Loss-scan cache (lazy detect_losses): a full scan stops at the
  // first live entry failing both thresholds, so its outcome is a pure
  // function of these five inputs. While none move and the armed
  // deadline has not arrived, the scan is skipped and the timer tail
  // replayed verbatim.
  bool loss_scan_valid_ = false;
  std::uint64_t loss_scan_head_ = 0;
  std::uint64_t loss_scan_largest_ = 0;
  Time loss_scan_threshold_ = 0;
  int loss_scan_reorder_ = 0;
  Time loss_scan_next_ = 0;

  // Same-tick ACK coalescing (see set_coalesce_same_tick_acks): the
  // last processed frame is stashed while more events are due at the
  // current tick; any sender-side activity in between invalidates it.
  bool coalesce_acks_ = false;
  bool ack_stash_valid_ = false;
  Time ack_stash_time_ = 0;
  netsim::Packet ack_stash_;
  std::int32_t train_extra_ = 0;  // coalesced dups reported on next AckEvent

  Bytes bytes_in_flight_ = 0;
  Bytes delivered_bytes_ = 0;
  Time delivered_time_ = 0;
  Bytes pending_retx_bytes_ = 0;

  RttEstimator rtt_;
  int reorder_threshold_ = 3;  // adapts upward on spurious losses
  // RACK reordering-window multiplier (kRackTlp only): doubles per
  // detected spurious loss, capped at profile.rack_max_reo_wnd_mult.
  int rack_reo_mult_ = 1;

  netsim::Timer pacing_timer_;
  netsim::Timer loss_timer_;
  netsim::Timer pto_timer_;
  netsim::Timer quantum_timer_;
  Time next_send_time_ = 0;
  Time last_egress_release_ = 0;
  int pto_count_ = 0;

  // Window-pacing interval cache (see pacing_interval()); keyed on the
  // exact (cwnd, srtt) pair the cached value was derived from.
  Bytes pace_key_cwnd_ = -1;
  Time pace_key_srtt_ = -1;
  Time pace_interval_ = 0;

  // Egress-jitter staging: a Packet is too large to capture inline in an
  // event callback, so delayed packets park in a pooled slot and the
  // scheduled closure captures only {this, slot index}.
  std::vector<netsim::Packet> egress_pool_;
  std::vector<std::uint32_t> egress_free_;

  SenderStats stats_;
  RttCallback rtt_cb_;
  CwndCallback cwnd_cb_;
  PacketSentCallback sent_cb_;
  PacketAckedCallback acked_cb_;
  PacketLostCallback lost_cb_;
  TimerCallback timer_cb_;
  PtoCallback pto_cb_;
  SpuriousLossCallback spurious_cb_;
  FinishedCallback finished_cb_;

  // Grace period during which a lost-marked packet is retained so a late
  // ack can be recognised as spurious.
  static constexpr Time kSpuriousGrace = time::sec(2);
};

} // namespace quicbench::transport
