#pragma once
// RFC 6298 / RFC 9002 round-trip-time estimation.

#include <algorithm>

#include "util/units.h"

namespace quicbench::transport {

class RttEstimator {
 public:
  // `sample` is the raw ack-arrival minus send time; `ack_delay` is the
  // receiver-reported delay, subtracted per RFC 9002 (but never below the
  // running minimum).
  void update(Time sample, Time ack_delay) {
    latest_ = sample;
    min_ = has_sample_ ? std::min(min_, sample) : sample;
    Time adjusted = sample;
    if (adjusted - ack_delay >= min_) adjusted -= ack_delay;
    if (!has_sample_) {
      smoothed_ = adjusted;
      rttvar_ = adjusted / 2;
      has_sample_ = true;
      return;
    }
    const Time err = std::max<Time>(
        smoothed_ > adjusted ? smoothed_ - adjusted : adjusted - smoothed_, 0);
    rttvar_ = (3 * rttvar_ + err) / 4;
    smoothed_ = (7 * smoothed_ + adjusted) / 8;
  }

  bool has_sample() const { return has_sample_; }
  Time smoothed() const { return has_sample_ ? smoothed_ : kInitialRtt; }
  Time rttvar() const { return has_sample_ ? rttvar_ : kInitialRtt / 2; }
  Time latest() const { return latest_; }
  Time min_rtt() const { return has_sample_ ? min_ : kInitialRtt; }

  // Probe timeout interval per RFC 9002 §6.2.1.
  Time pto_interval(Time max_ack_delay) const {
    return smoothed() + std::max<Time>(4 * rttvar(), time::ms(1)) +
           max_ack_delay;
  }

  static constexpr Time kInitialRtt = time::ms(333);

 private:
  bool has_sample_ = false;
  Time smoothed_ = 0;
  Time rttvar_ = 0;
  Time latest_ = 0;
  Time min_ = 0;
};

} // namespace quicbench::transport
