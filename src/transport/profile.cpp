#include "transport/profile.h"

#include <sstream>

namespace quicbench::transport {

std::string SenderProfile::describe() const {
  std::ostringstream os;
  os << "mss=" << mss << " icw=" << initial_cwnd_packets
     << " pace=" << (pace_window_ccas ? "yes" : "no");
  if (flow_control_window > 0) os << " fc=" << flow_control_window;
  if (egress_jitter > 0) {
    os << " jitter=" << time::to_us(egress_jitter) << "us"
       << (egress_reorder ? "(reorder)" : "");
  }
  if (send_quantum > 0) os << " quantum=" << time::to_us(send_quantum) << "us";
  return os.str();
}

StackProfile kernel_tcp_profile() {
  StackProfile p;
  p.sender.mss = 1448;
  p.sender.header_overhead = 52;  // 1500B frames on the wire
  p.sender.initial_cwnd_packets = 10;
  // Linux internal pacing (tcp_pacing_ca_ratio=120) is active on testbeds
  // using the fq qdisc, as tc-shaped setups commonly do.
  p.sender.pace_window_ccas = true;
  p.sender.window_pacing_factor = 1.2;
  p.sender.pacing_burst_packets = 2;
  p.receiver.ack_every_n = 2;  // delayed ack
  p.receiver.max_ack_delay = time::ms(40);
  return p;
}

StackProfile default_quic_profile() {
  StackProfile p;
  p.sender.mss = 1350;           // typical QUIC max UDP payload
  p.sender.header_overhead = 78; // UDP/IP + QUIC short header + auth tag
  p.sender.initial_cwnd_packets = 10;
  p.sender.pace_window_ccas = true;  // most QUIC stacks pace everything
  p.sender.pacing_burst_packets = 2;
  p.receiver.ack_every_n = 2;        // RFC 9000 recommendation
  p.receiver.max_ack_delay = time::ms(25);
  return p;
}

} // namespace quicbench::transport
