#include "transport/sender.h"

#include <algorithm>
#include <cassert>

namespace quicbench::transport {

using netsim::Packet;
using netsim::PacketKind;

SenderEndpoint::SenderEndpoint(
    netsim::Simulator& sim, int flow, SenderProfile profile,
    std::unique_ptr<cca::CongestionController> controller,
    netsim::PacketSink* network, Rng rng)
    : sim_(sim),
      flow_(flow),
      profile_(profile),
      cca_(std::move(controller)),
      network_(network),
      rng_(rng),
      reorder_threshold_(profile.packet_reorder_threshold),
      pacing_timer_(sim),
      loss_timer_(sim),
      pto_timer_(sim),
      quantum_timer_(sim) {
  assert(cca_ && network_);
  pacing_timer_.set([this] { do_send_loop(); });
  loss_timer_.set([this] {
    if (timer_cb_) {
      timer_cb_(sim_.now(), LossTimerKind::kLossDetection,
                LossTimerEvent::kExpired, 0);
    }
    detect_losses();
    compact_sent_log();
    maybe_send();
  });
  pto_timer_.set([this] { on_pto(); });
  quantum_timer_.set([this] {
    do_send_loop();
    if (started_) maybe_send();  // keep ticking
  });
  sent_.reserve(256);
}

void SenderEndpoint::start(Time at) {
  sim_.schedule(std::max(at, sim_.now()), [this] {
    started_ = true;
    delivered_time_ = sim_.now();
    maybe_send();
  });
}

SenderEndpoint::SentMeta* SenderEndpoint::meta(std::uint64_t pn) {
  if (pn < base_pn_ || pn >= next_pn_) return nullptr;
  return &sent_[static_cast<std::size_t>(pn - base_pn_)];
}

void SenderEndpoint::compact_sent_log() {
  const Time now = sim_.now();
  while (!sent_.empty()) {
    const SentMeta& f = sent_.front();
    if (f.acked) {
      sent_.pop_front();
      ++base_pn_;
    } else if (f.lost && f.sent_time + kSpuriousGrace < now) {
      unresolved_.erase(base_pn_);
      sent_.pop_front();
      ++base_pn_;
    } else {
      break;
    }
  }
}

void SenderEndpoint::deliver(Packet p) {
  if (p.kind != PacketKind::kAck || p.flow != flow_) return;
  on_ack_frame(p);
}

void SenderEndpoint::on_ack_frame(const Packet& ack) {
  const Time now = sim_.now();

  const auto covered = [&ack](std::uint64_t pn) {
    for (int i = 0; i < ack.n_ranges; ++i) {
      if (pn >= ack.ranges[static_cast<std::size_t>(i)].first &&
          pn <= ack.ranges[static_cast<std::size_t>(i)].last) {
        return true;
      }
    }
    return false;
  };

  Bytes newly_acked_bytes = 0;
  std::uint64_t largest_newly = 0;
  SentMeta* largest_newly_meta = nullptr;

  const auto ack_pn = [&](std::uint64_t pn) {
    SentMeta* m = meta(pn);
    if (m == nullptr || m->acked) return;
    if (m->lost) {
      // Late ack for a packet we declared lost: spurious loss.
      m->acked = true;
      ++stats_.spurious_losses;
      unresolved_.erase(pn);
      if (profile_.adapt_reorder_threshold &&
          reorder_threshold_ < profile_.max_packet_reorder_threshold) {
        ++reorder_threshold_;  // RACK-style reo_wnd widening
      }
      cca_->on_spurious_loss({now, pn, m->wire_size, m->sent_time});
      if (spurious_cb_) spurious_cb_(now, pn);
      return;
    }
    m->acked = true;
    bytes_in_flight_ -= m->wire_size;
    if (acked_cb_) acked_cb_(now, pn, m->wire_size);
    delivered_bytes_ += m->wire_size;
    delivered_time_ = now;
    newly_acked_bytes += m->wire_size;
    if (largest_newly_meta == nullptr || pn > largest_newly) {
      largest_newly = pn;
      largest_newly_meta = m;
    }
    unresolved_.erase(pn);
  };

  // 1. Walk the window of pns this frame may newly resolve.
  const std::uint64_t prev_frontier = any_acked_ ? largest_acked_ + 1 : base_pn_;
  if (ack.largest_acked >= prev_frontier) {
    for (std::uint64_t pn = prev_frontier; pn <= ack.largest_acked; ++pn) {
      if (covered(pn)) {
        ack_pn(pn);
      } else {
        SentMeta* m = meta(pn);
        if (m != nullptr && !m->acked && !m->lost) unresolved_.insert(pn);
      }
    }
    largest_acked_ = ack.largest_acked;
    any_acked_ = true;
  }

  // 2. Revisit old gaps: stragglers and spurious losses.
  for (auto it = unresolved_.begin(); it != unresolved_.end();) {
    const std::uint64_t pn = *it;
    ++it;  // ack_pn may erase pn
    if (covered(pn)) ack_pn(pn);
  }

  // RTT sample: only when the frame's largest-acked was newly acked.
  Time rtt_sample = 0;
  if (largest_newly_meta != nullptr && largest_newly == ack.largest_acked) {
    rtt_sample = now - largest_newly_meta->sent_time;
    rtt_.update(rtt_sample, ack.ack_delay);
    if (rtt_cb_) rtt_cb_(now, rtt_sample);
  }

  if (newly_acked_bytes > 0) {
    cca::AckEvent ev;
    ev.now = now;
    ev.bytes_acked = newly_acked_bytes;
    ev.bytes_in_flight = bytes_in_flight_;
    ev.rtt = rtt_sample;
    ev.smoothed_rtt = rtt_.smoothed();
    ev.min_rtt = rtt_.min_rtt();
    ev.largest_newly_acked = largest_newly;
    ev.largest_newly_acked_sent_time = largest_newly_meta->sent_time;
    ev.largest_sent_pn = next_pn_ == 0 ? 0 : next_pn_ - 1;
    const Time interval = now - largest_newly_meta->delivered_time_at_send;
    if (interval > 0) {
      ev.rate_valid = true;
      ev.delivery_rate =
          rate_of(delivered_bytes_ - largest_newly_meta->delivered_at_send,
                  interval);
    }
    cca_->on_ack(ev);
    if (cwnd_cb_) cwnd_cb_(now, cca_->cwnd(), bytes_in_flight_);

    pto_count_ = 0;
    arm_pto();
  }

  detect_losses();
  compact_sent_log();
  maybe_send();
}

Time SenderEndpoint::loss_time_threshold() const {
  const Time base =
      profile_.time_threshold_base == TimeThresholdBase::kMinRtt
          ? rtt_.min_rtt()
          : std::max(rtt_.smoothed(), rtt_.latest());
  return static_cast<Time>(profile_.time_reorder_fraction *
                           static_cast<double>(base));
}

void SenderEndpoint::detect_losses() {
  if (!any_acked_) return;
  const Time now = sim_.now();
  const Time threshold = loss_time_threshold();

  Bytes lost_bytes = 0;
  std::uint64_t largest_lost = 0;
  Time largest_lost_sent = 0;
  Time next_loss_time = time::kInfinite;

  for (const std::uint64_t pn : unresolved_) {
    SentMeta* m = meta(pn);
    if (m == nullptr || m->acked || m->lost) continue;
    if (pn >= largest_acked_) continue;
    const bool pkt_thresh =
        largest_acked_ >= pn + static_cast<std::uint64_t>(reorder_threshold_);
    const bool time_thresh = m->sent_time + threshold <= now;
    if (pkt_thresh || time_thresh) {
      m->lost = true;
      bytes_in_flight_ -= m->wire_size;
      lost_bytes += m->wire_size;
      pending_retx_bytes_ += m->payload;
      ++stats_.losses_detected;
      if (lost_cb_) lost_cb_(now, pn);
      if (pn >= largest_lost) {
        largest_lost = pn;
        largest_lost_sent = m->sent_time;
      }
    } else {
      next_loss_time = std::min(next_loss_time, m->sent_time + threshold);
    }
  }

  if (lost_bytes > 0) {
    ++stats_.loss_events;
    cca::LossEvent ev;
    ev.now = now;
    ev.bytes_lost = lost_bytes;
    ev.bytes_in_flight = bytes_in_flight_;
    ev.largest_lost_pn = largest_lost;
    ev.largest_lost_sent_time = largest_lost_sent;
    ev.is_persistent_congestion = false;
    cca_->on_loss(ev);
    if (cwnd_cb_) cwnd_cb_(now, cca_->cwnd(), bytes_in_flight_);
  }

  if (next_loss_time != time::kInfinite) {
    loss_timer_.rearm(next_loss_time);
    if (timer_cb_) {
      timer_cb_(now, LossTimerKind::kLossDetection, LossTimerEvent::kSet,
                next_loss_time);
    }
  } else {
    const bool was_armed = loss_timer_.armed();
    loss_timer_.cancel();
    if (was_armed && timer_cb_) {
      timer_cb_(now, LossTimerKind::kLossDetection, LossTimerEvent::kCancelled,
                0);
    }
  }
}

void SenderEndpoint::arm_pto() {
  if (bytes_in_flight_ <= 0) {
    const bool was_armed = pto_timer_.armed();
    pto_timer_.cancel();
    if (was_armed && timer_cb_) {
      timer_cb_(sim_.now(), LossTimerKind::kPto, LossTimerEvent::kCancelled, 0);
    }
    return;
  }
  const Time interval = rtt_.pto_interval(profile_.max_ack_delay_assumed)
                        << std::min(pto_count_, 6);
  pto_timer_.rearm_in(interval);
  if (timer_cb_) {
    timer_cb_(sim_.now(), LossTimerKind::kPto, LossTimerEvent::kSet,
              sim_.now() + interval);
  }
}

void SenderEndpoint::on_pto() {
  ++stats_.ptos_fired;
  ++pto_count_;
  if (timer_cb_) {
    timer_cb_(sim_.now(), LossTimerKind::kPto, LossTimerEvent::kExpired, 0);
  }
  if (pto_cb_) pto_cb_(sim_.now(), pto_count_);
  if (pto_count_ >= profile_.persistent_congestion_ptos) {
    declare_persistent_congestion();
  }
  send_one(/*is_probe=*/true);
  arm_pto();
}

void SenderEndpoint::declare_persistent_congestion() {
  const Time now = sim_.now();
  Bytes lost_bytes = 0;
  std::uint64_t largest_lost = 0;
  Time largest_lost_sent = 0;
  for (std::uint64_t pn = base_pn_; pn < next_pn_; ++pn) {
    SentMeta* m = meta(pn);
    if (m == nullptr || m->acked || m->lost) continue;
    m->lost = true;
    bytes_in_flight_ -= m->wire_size;
    lost_bytes += m->wire_size;
    pending_retx_bytes_ += m->payload;
    unresolved_.insert(pn);
    if (lost_cb_) lost_cb_(now, pn);
    largest_lost = pn;
    largest_lost_sent = m->sent_time;
  }
  if (lost_bytes == 0) return;
  ++stats_.persistent_congestion_events;
  cca::LossEvent ev;
  ev.now = now;
  ev.bytes_lost = lost_bytes;
  ev.bytes_in_flight = bytes_in_flight_;
  ev.largest_lost_pn = largest_lost;
  ev.largest_lost_sent_time = largest_lost_sent;
  ev.is_persistent_congestion = true;
  cca_->on_loss(ev);
  if (cwnd_cb_) cwnd_cb_(now, cca_->cwnd(), bytes_in_flight_);
  pto_count_ = 0;
}

std::optional<Rate> SenderEndpoint::effective_pacing_rate() const {
  if (auto r = cca_->pacing_rate(); r.has_value()) return r;
  if (profile_.pace_window_ccas && rtt_.has_sample()) {
    const double cwnd_bits = static_cast<double>(cca_->cwnd()) * 8.0;
    return profile_.window_pacing_factor * cwnd_bits /
           time::to_sec(rtt_.smoothed());
  }
  return std::nullopt;
}

void SenderEndpoint::maybe_send() {
  if (!started_) return;
  if (profile_.send_quantum > 0) {
    // Batched send loop: wake only on quantum boundaries.
    if (!quantum_timer_.armed()) {
      quantum_timer_.rearm_in(profile_.send_quantum);
    }
    return;
  }
  do_send_loop();
}

void SenderEndpoint::do_send_loop() {
  const Bytes wire = profile_.mss + profile_.header_overhead;
  for (;;) {
    if (bytes_in_flight_ + wire > cca_->cwnd()) break;
    if (profile_.flow_control_window > 0 &&
        bytes_in_flight_ + wire > profile_.flow_control_window) {
      break;
    }
    if (const auto rate = effective_pacing_rate(); rate.has_value()) {
      if (next_send_time_ > sim_.now()) {
        if (profile_.send_quantum <= 0) {
          pacing_timer_.rearm(next_send_time_);
        }
        break;
      }
      const Time interval = serialization_time(wire, *rate);
      const Time burst_allowance =
          interval * std::max(profile_.pacing_burst_packets - 1, 0);
      next_send_time_ =
          std::max(next_send_time_, sim_.now() - burst_allowance) + interval;
    }
    send_one(/*is_probe=*/false);
  }
}

void SenderEndpoint::send_one(bool is_probe) {
  const Time now = sim_.now();
  const Bytes wire = profile_.mss + profile_.header_overhead;

  SentMeta m;
  m.wire_size = wire;
  m.payload = profile_.mss;
  m.sent_time = now;
  m.delivered_at_send = delivered_bytes_;
  m.delivered_time_at_send = delivered_time_;
  m.is_retx = is_probe || pending_retx_bytes_ > 0;
  if (pending_retx_bytes_ > 0) {
    pending_retx_bytes_ = std::max<Bytes>(pending_retx_bytes_ - profile_.mss, 0);
    ++stats_.retransmissions;
  } else if (is_probe) {
    ++stats_.retransmissions;
  }

  const std::uint64_t pn = next_pn_++;
  sent_.push_back(m);
  bytes_in_flight_ += wire;
  ++stats_.packets_sent;
  stats_.bytes_sent += wire;

  cca::SentPacketEvent ev;
  ev.now = now;
  ev.pn = pn;
  ev.size = wire;
  ev.bytes_in_flight = bytes_in_flight_;
  ev.is_retransmission = m.is_retx;
  cca_->on_packet_sent(ev);
  if (sent_cb_) sent_cb_(now, pn, wire, m.is_retx);

  Packet p;
  p.kind = PacketKind::kData;
  p.flow = flow_;
  p.size = wire;
  p.pn = pn;
  p.payload = m.payload;
  p.sent_time = now;

  if (profile_.egress_jitter > 0) {
    Time release = now + static_cast<Time>(
                             rng_.uniform() *
                             static_cast<double>(profile_.egress_jitter));
    if (!profile_.egress_reorder) {
      release = std::max(release, last_egress_release_);
    }
    last_egress_release_ = std::max(last_egress_release_, release);
    // Park the packet in a pooled slot: a Packet is too large for the
    // event callback's inline buffer, so capture only {this, slot}.
    std::uint32_t idx;
    if (!egress_free_.empty()) {
      idx = egress_free_.back();
      egress_free_.pop_back();
      egress_pool_[idx] = std::move(p);
    } else {
      idx = static_cast<std::uint32_t>(egress_pool_.size());
      egress_pool_.push_back(std::move(p));
    }
    sim_.schedule(release, [this, idx] {
      Packet pkt = std::move(egress_pool_[idx]);
      egress_free_.push_back(idx);
      network_->deliver(std::move(pkt));
    });
  } else {
    network_->deliver(std::move(p));
  }

  if (!pto_timer_.armed()) arm_pto();
}

} // namespace quicbench::transport
