#include "transport/sender.h"

#include <algorithm>
#include <cassert>

#include "obs/attrib.h"

namespace quicbench::transport {

using netsim::AckRange;
using netsim::Packet;
using netsim::PacketKind;

namespace {

// Normalizes an ACK frame's ranges (up to 8, possibly unordered or
// overlapping — receivers emit them newest-first) into ascending,
// disjoint, maximal segments. Per-pn membership tests against the
// segments are then O(1) amortized along an ascending pn walk, instead
// of O(n_ranges) per pn.
int normalize_ranges(const Packet& ack, AckRange* segs) {
  const int n = ack.n_ranges;
  for (int i = 0; i < n; ++i) segs[i] = ack.range(i);
  // Insertion sort by first pn: n <= 8.
  for (int i = 1; i < n; ++i) {
    const AckRange r = segs[i];
    int j = i - 1;
    while (j >= 0 && segs[j].first > r.first) {
      segs[j + 1] = segs[j];
      --j;
    }
    segs[j + 1] = r;
  }
  // Merge overlapping or pn-adjacent segments.
  int out = 0;
  for (int i = 1; i < n; ++i) {
    if (segs[i].first <= segs[out].last + 1 && segs[out].last + 1 != 0) {
      segs[out].last = std::max(segs[out].last, segs[i].last);
    } else {
      segs[++out] = segs[i];
    }
  }
  return n == 0 ? 0 : out + 1;
}

} // namespace

SenderEndpoint::SenderEndpoint(
    netsim::Simulator& sim, int flow, SenderProfile profile,
    std::unique_ptr<cca::CongestionController> controller,
    netsim::PacketSink* network, Rng rng)
    : sim_(sim),
      flow_(flow),
      profile_(profile),
      cca_(std::move(controller)),
      network_(network),
      rng_(rng),
      reorder_threshold_(profile.packet_reorder_threshold),
      pacing_timer_(sim),
      loss_timer_(sim),
      pto_timer_(sim),
      quantum_timer_(sim) {
  assert(cca_ && network_);
  // Every timer fire may mutate sender state, which invalidates the
  // stashed same-tick ACK frame (the no-op proof assumes no intervening
  // sender activity).
  pacing_timer_.set([this] {
    ack_stash_valid_ = false;
    do_send_loop();
  });
  loss_timer_.set([this] {
    ack_stash_valid_ = false;
    if (timer_cb_) {
      timer_cb_(sim_.now(), LossTimerKind::kLossDetection,
                LossTimerEvent::kExpired, 0);
    }
    detect_losses();
    compact_sent_log();
    maybe_send();
  });
  pto_timer_.set([this] { on_pto(); });
  quantum_timer_.set([this] {
    ack_stash_valid_ = false;
    do_send_loop();
    if (started_ && !out_of_data()) maybe_send();  // keep ticking
  });
  log_.reserve(256);
}

void SenderEndpoint::start(Time at) {
  sim_.schedule(std::max(at, sim_.now()), [this] {
    started_ = true;
    delivered_time_ = sim_.now();
    maybe_send();
  });
}

void SenderEndpoint::compact_sent_log() {
  QB_ATTRIB_SCOPE(kSenderCompact);
  log_.compact(sim_.now(), kSpuriousGrace);
}

namespace {

// Byte-identical ACK frames are the provably-commutative coalescing
// class: the second copy cannot resolve anything the first did not.
bool same_ack_frame(const Packet& a, const Packet& b) {
  if (a.pn != b.pn || a.largest_acked != b.largest_acked ||
      a.ack_delay != b.ack_delay || a.n_ranges != b.n_ranges) {
    return false;
  }
  for (int i = 0; i < a.n_ranges; ++i) {
    const netsim::AckRange ra = a.range(i);
    const netsim::AckRange rb = b.range(i);
    if (ra.first != rb.first || ra.last != rb.last) return false;
  }
  return true;
}

} // namespace

void SenderEndpoint::deliver(Packet p) {
  if (p.kind != PacketKind::kAck || p.flow != flow_) return;
  if (coalesce_acks_) {
    const Time now = sim_.now();
    if (ack_stash_valid_ && ack_stash_time_ == now &&
        same_ack_frame(ack_stash_, p)) {
      // Same tick, same bytes, no sender activity in between: the
      // repeat is a pure no-op (see assert_duplicate_is_noop).
      assert_duplicate_is_noop(p);
      ++stats_.acks_coalesced;
      ++train_extra_;
      return;
    }
    on_ack_frame(p);
    // Stash only while the tick can still deliver a duplicate, and only
    // when no loss-timer observer would miss its redundant re-set
    // notification.
    if (!timer_cb_ && sim_.has_pending_event_at_now()) {
      ack_stash_ = p;
      ack_stash_time_ = now;
      ack_stash_valid_ = true;
    } else {
      ack_stash_valid_ = false;
    }
    return;
  }
  on_ack_frame(p);
}

// Debug re-proof of the coalescing claim: a stash-identical same-tick
// frame must not advance the ack frontier and must not cover any live
// unresolved or outstanding-lost pn — everything below the frontier it
// covers was already resolved by the first copy, so reprocessing would
// ack nothing, fire no callback, and send nothing.
void SenderEndpoint::assert_duplicate_is_noop(const Packet& dup) {
#ifdef NDEBUG
  (void)dup;
#else
  assert(any_acked_ && dup.largest_acked <= largest_acked_);
  AckRange segs[Packet::kMaxAckRanges];
  const int n_segs = normalize_ranges(dup, segs);
  const auto covered = [&](std::uint64_t pn) {
    for (int s = 0; s < n_segs; ++s) {
      if (pn >= segs[s].first && pn <= segs[s].last) return true;
    }
    return false;
  };
  for (std::uint64_t pn = log_.unres_head(); pn != SentLog::kNone;
       pn = log_.unres_next(pn)) {
    assert(!covered(pn));
  }
  for (std::size_t i = 0; i < log_.lost_size(); ++i) {
    assert(!covered(log_.lost_at(i)));
  }
#endif
}

void SenderEndpoint::on_ack_frame(const Packet& ack) {
  QB_ATTRIB_SCOPE(kSenderAck);
  const Time now = sim_.now();

  AckRange segs[Packet::kMaxAckRanges];
  const int n_segs = normalize_ranges(ack, segs);

  Bytes newly_acked_bytes = 0;
  std::uint64_t largest_newly = 0;
  bool have_newly = false;

  // Scalar resolution of one pn: the reference path. Contiguous runs
  // above the frontier go through the batched range ops below instead;
  // stragglers and spurious acks from the step-2 merge, and any run a
  // per-pn observer or persistent-congestion leftover disqualifies,
  // still land here so the callback and CCA sequencing never changes.
  const auto ack_pn = [&](std::uint64_t pn) {
    if (!log_.contains(pn)) return;
    const std::size_t s = log_.slot(pn);
    const std::uint8_t f = log_.flags_at(s);
    if (f & kSentAcked) return;
    const Bytes wire = log_.wire_size_at(s);
    if (f & kSentLost) {
      // Late ack for a packet we declared lost: spurious loss.
      log_.note_spurious_ack(pn);
      ++stats_.spurious_losses;
      if (profile_.loss_detection == LossDetection::kRackTlp) {
        // RFC 8985 §6.2: every detected spurious retransmission widens
        // the reordering window multiplicatively, up to the cap.
        if (rack_reo_mult_ < profile_.rack_max_reo_wnd_mult) {
          rack_reo_mult_ = std::min(rack_reo_mult_ * 2,
                                    profile_.rack_max_reo_wnd_mult);
        }
      } else if (profile_.adapt_reorder_threshold &&
                 reorder_threshold_ < profile_.max_packet_reorder_threshold) {
        ++reorder_threshold_;  // RACK-style reo_wnd widening
      }
      cca_->on_spurious_loss({now, pn, wire, log_.sent_time_at(s)});
      if (spurious_cb_) spurious_cb_(now, pn);
      return;
    }
    log_.add_flags_at(s, kSentAcked);
    bytes_in_flight_ -= wire;
    if (acked_cb_) acked_cb_(now, pn, wire);
    delivered_bytes_ += wire;
    delivered_time_ = now;
    newly_acked_bytes += wire;
    if (!have_newly || pn > largest_newly) {
      largest_newly = pn;
      have_newly = true;
    }
    if (f & kSentUnres) log_.unlink_unresolved(pn);
  };

  // Batched resolution of the in-segment run [first, last] (clipped to
  // the log): one vectorizable pass over the SoA arrays when no per-pn
  // ack observer is installed and no lost-marked pn can sit in the run
  // (only persistent congestion puts losses above the old frontier).
  // Short runs — the ack-every-couple-packets steady state — take the
  // scalar loop directly: the range op's fixed costs (clipping, the
  // lost-set probe, the two flag passes) only pay for themselves on
  // bursts, and ack_pn handles every per-pn case on its own.
  constexpr std::uint64_t kAckRunCutoff = 8;
  const auto ack_run = [&](std::uint64_t first, std::uint64_t last) {
    first = std::max(first, log_.base_pn());
    if (log_.next_pn() == 0) return;
    last = std::min(last, log_.next_pn() - 1);
    if (first > last) return;
    if (acked_cb_ || last - first + 1 < kAckRunCutoff ||
        log_.lost_intersects(first, last)) {
      for (std::uint64_t pn = first; pn <= last; ++pn) ack_pn(pn);
      return;
    }
    QB_ATTRIB_SCOPE(kSenderAckRange);
    const Bytes bytes = log_.ack_clean_range(first, last);
    bytes_in_flight_ -= bytes;
    delivered_bytes_ += bytes;
    delivered_time_ = now;
    newly_acked_bytes += bytes;
    largest_newly = last;  // runs ascend within a frame
    have_newly = true;
  };

  // Batched gap-noting for [first, last] (clipped to the log): every pn
  // above the frontier is either live (tail-append link) or a
  // persistent-congestion leftover (skipped), matching note_gap.
  const auto gap_run = [&](std::uint64_t first, std::uint64_t last) {
    first = std::max(first, log_.base_pn());
    if (log_.next_pn() == 0) return;
    last = std::min(last, log_.next_pn() - 1);
    if (first > last) return;
    log_.link_gap_run(first, last);
  };

  // 1. Walk the window of pns this frame may newly resolve, segment by
  // segment: pns inside a segment are acked, pns between segments become
  // unresolved gaps. Segments are clipped to the window on the fly; the
  // stored segs stay unclipped for step 2.
  const std::uint64_t prev_frontier =
      any_acked_ ? largest_acked_ + 1 : log_.base_pn();
  if (ack.largest_acked >= prev_frontier) {
    std::uint64_t pn = prev_frontier;
    for (int s = 0; s < n_segs && pn <= ack.largest_acked; ++s) {
      if (segs[s].last < pn) continue;
      const std::uint64_t seg_first = std::max(segs[s].first, pn);
      if (pn < seg_first) {
        gap_run(pn, std::min(seg_first - 1, ack.largest_acked));
        pn = seg_first;
      }
      if (pn > ack.largest_acked) break;
      const std::uint64_t seg_last = std::min(segs[s].last, ack.largest_acked);
      ack_run(pn, seg_last);
      pn = seg_last + 1;
    }
    if (pn <= ack.largest_acked) gap_run(pn, ack.largest_acked);
    largest_acked_ = ack.largest_acked;
    any_acked_ = true;
  }

  // 2. Revisit old gaps and graced losses: stragglers and spurious
  // acks. Segment-driven: the live unresolved list (short — gaps turn
  // into losses within a reorder window) is walked with a cursor, and
  // the lost set (large under loss-heavy CCAs: everything inside the
  // spurious grace window) is entered by one binary search at the
  // frame's span start, so the lost entries below every segment — the
  // bulk of the set — are never visited. Hits inside one segment are
  // merged by pn, which — segments ascending, both sets ascending —
  // reproduces exactly the globally ascending resolution order of a
  // full-list walk. The next link is read before ack_pn, which may
  // unlink pn; a spurious ack erases the lost entry in place, so index
  // li then already names its successor.
  if (log_.unres_head() != SentLog::kNone || !log_.lost_empty()) {
    QB_ATTRIB_SCOPE(kSenderAckMerge);
    std::uint64_t pn = log_.unres_head();
    // One binary search per frame positions the lost cursor at the first
    // entry the frame's span can cover; segments ascend, so from there
    // both cursors only ever step forward.
    std::size_t li =
        log_.lost_empty() ? 0 : log_.lost_lower_bound(segs[0].first);
    for (int s = 0; s < n_segs; ++s) {
      if (pn == SentLog::kNone && li >= log_.lost_size()) break;
      while (pn != SentLog::kNone && pn < segs[s].first) {
        pn = log_.unres_next(pn);
      }
      while (li < log_.lost_size() && log_.lost_at(li) < segs[s].first) {
        ++li;
      }
      for (;;) {
        const bool live_in = pn != SentLog::kNone && pn <= segs[s].last;
        const bool lost_in =
            li < log_.lost_size() && log_.lost_at(li) <= segs[s].last;
        if (!live_in && !lost_in) break;
        if (live_in && (!lost_in || pn < log_.lost_at(li))) {
          const std::uint64_t next = log_.unres_next(pn);
          ack_pn(pn);
          pn = next;
        } else {
          const std::size_t before = log_.lost_size();
          ack_pn(log_.lost_at(li));  // spurious ack: erases entry li
          if (log_.lost_size() == before) ++li;  // not erased: step over
        }
      }
    }
  }

  // RTT sample: only when the frame's largest-acked was newly acked.
  Time rtt_sample = 0;
  if (have_newly && largest_newly == ack.largest_acked) {
    rtt_sample = now - log_.sent_time(largest_newly);
    rtt_.update(rtt_sample, ack.ack_delay);
    if (rtt_cb_) rtt_cb_(now, rtt_sample);
  }

  if (newly_acked_bytes > 0) {
    cca::AckEvent ev;
    ev.now = now;
    ev.bytes_acked = newly_acked_bytes;
    ev.bytes_in_flight = bytes_in_flight_;
    ev.rtt = rtt_sample;
    ev.smoothed_rtt = rtt_.smoothed();
    ev.min_rtt = rtt_.min_rtt();
    ev.largest_newly_acked = largest_newly;
    ev.largest_newly_acked_sent_time = log_.sent_time(largest_newly);
    ev.largest_sent_pn = log_.next_pn() == 0 ? 0 : log_.next_pn() - 1;
    ev.train_frames = 1 + train_extra_;
    // The cold arrays are only touched here, after the frame is known
    // to have newly acked something: pure-duplicate frames resolve
    // nothing above and never reach this load.
    const SentCold& cold = log_.cold(largest_newly);
    const Time interval = now - cold.delivered_time_at_send;
    if (interval > 0) {
      ev.rate_valid = true;
      ev.delivery_rate =
          rate_of(delivered_bytes_ - cold.delivered_at_send, interval);
    }
    {
      QB_ATTRIB_SCOPE(kCcaOnAck);
      cca_->on_ack(ev);
    }
    if (cwnd_cb_) cwnd_cb_(now, cca_->cwnd(), bytes_in_flight_);

    pto_count_ = 0;
    arm_pto();
  }
  train_extra_ = 0;

  detect_losses();
  compact_sent_log();
  maybe_send();
  maybe_finish();
}

// A flow departs only through the ack path: losses re-add pending retx
// bytes, so the limit + no-retx + empty-flight condition can first hold
// right after an ack frame resolved the final packet.
void SenderEndpoint::maybe_finish() {
  if (finished_ || !started_ || !out_of_data()) return;
  if (bytes_in_flight_ > 0) return;
  finished_ = true;
  pacing_timer_.cancel();
  quantum_timer_.cancel();
  loss_timer_.cancel();
  pto_timer_.cancel();
  if (finished_cb_) finished_cb_(sim_.now());
}

Time SenderEndpoint::loss_time_threshold() const {
  if (profile_.loss_detection == LossDetection::kRackTlp) {
    // RACK (RFC 8985): a packet is lost once an RTT plus the reordering
    // window has elapsed since it was sent. The window starts at a
    // fraction of min_rtt, doubles on observed spurious losses
    // (rack_reo_mult_), and is capped at one smoothed RTT.
    const Time rtt = std::max(rtt_.smoothed(), rtt_.latest());
    const Time reo_wnd = std::min(
        static_cast<Time>(profile_.rack_reo_wnd_fraction *
                          static_cast<double>(rtt_.min_rtt()) *
                          static_cast<double>(rack_reo_mult_)),
        rtt_.smoothed());
    return rtt + reo_wnd;
  }
  const Time base =
      profile_.time_threshold_base == TimeThresholdBase::kMinRtt
          ? rtt_.min_rtt()
          : std::max(rtt_.smoothed(), rtt_.latest());
  return static_cast<Time>(profile_.time_reorder_fraction *
                           static_cast<double>(base));
}

void SenderEndpoint::detect_losses() {
  if (!any_acked_) return;
  QB_ATTRIB_SCOPE(kSenderLoss);
  const Time now = sim_.now();
  const Time threshold = loss_time_threshold();

  // Lazy scan: the walk below stops at the first live entry failing
  // both thresholds, so its entire outcome is a pure function of the
  // list head and these four inputs. While none of them move and the
  // armed deadline has not arrived, the scan would terminate at the
  // same head entry having declared nothing — skip it and replay the
  // identical timer tail (the rearm is an in-place no-op and the
  // observer, if any, sees the same redundant set notification the
  // full scan would have emitted).
  if (loss_scan_valid_ && log_.unres_head() == loss_scan_head_ &&
      largest_acked_ == loss_scan_largest_ &&
      threshold == loss_scan_threshold_ &&
      reorder_threshold_ == loss_scan_reorder_ && now < loss_scan_next_) {
    if (loss_scan_next_ != time::kInfinite) {
      loss_timer_.rearm(loss_scan_next_);
      if (timer_cb_) {
        timer_cb_(now, LossTimerKind::kLossDetection, LossTimerEvent::kSet,
                  loss_scan_next_);
      }
    }
    return;
  }

  Bytes lost_bytes = 0;
  std::uint64_t largest_lost = 0;
  Time largest_lost_sent = 0;
  Time next_loss_time = time::kInfinite;

  // The unresolved list holds only live gaps and ascends in pn and
  // therefore in sent_time, so both loss thresholds are monotone along
  // the walk: the first entry that fails both is the earliest future
  // loss, and every entry after it fails both too — stop there.
  // RACK disables the packet-count threshold entirely: loss is declared
  // by time alone (this flag is constant per sender, so the loss-scan
  // cache above stays sound — the time threshold is already an input).
  const bool time_only = profile_.loss_detection == LossDetection::kRackTlp;
  std::uint64_t pn = log_.unres_head();
  while (pn != SentLog::kNone) {
    const std::size_t s = log_.slot(pn);
    const std::uint64_t nxt = log_.next_at(s);
    assert(!(log_.flags_at(s) & (kSentAcked | kSentLost)));
    if (pn >= largest_acked_) break;  // ascending: nothing below remains
    const Time sent = log_.sent_time_at(s);
    const bool pkt_thresh =
        !time_only &&
        largest_acked_ >= pn + static_cast<std::uint64_t>(reorder_threshold_);
    const bool time_thresh = sent + threshold <= now;
    if (pkt_thresh || time_thresh) {
      log_.mark_lost(pn);  // unlinks; parks in the lost set for grace
      const Bytes wire = log_.wire_size_at(s);
      bytes_in_flight_ -= wire;
      lost_bytes += wire;
      pending_retx_bytes_ += profile_.mss;
      ++stats_.losses_detected;
      if (lost_cb_) lost_cb_(now, pn);
      if (pn >= largest_lost) {
        largest_lost = pn;
        largest_lost_sent = sent;
      }
    } else {
      next_loss_time = sent + threshold;
      break;
    }
    pn = nxt;
  }

  if (lost_bytes > 0) {
    ++stats_.loss_events;
    cca::LossEvent ev;
    ev.now = now;
    ev.bytes_lost = lost_bytes;
    ev.bytes_in_flight = bytes_in_flight_;
    ev.largest_lost_pn = largest_lost;
    ev.largest_lost_sent_time = largest_lost_sent;
    ev.is_persistent_congestion = false;
    {
      QB_ATTRIB_SCOPE(kCcaOnLoss);
      cca_->on_loss(ev);
    }
    if (cwnd_cb_) cwnd_cb_(now, cca_->cwnd(), bytes_in_flight_);
  }

  if (next_loss_time != time::kInfinite) {
    loss_timer_.rearm(next_loss_time);
    if (timer_cb_) {
      timer_cb_(now, LossTimerKind::kLossDetection, LossTimerEvent::kSet,
                next_loss_time);
    }
  } else {
    const bool was_armed = loss_timer_.armed();
    loss_timer_.cancel();
    if (was_armed && timer_cb_) {
      timer_cb_(now, LossTimerKind::kLossDetection, LossTimerEvent::kCancelled,
                0);
    }
  }

  loss_scan_valid_ = true;
  loss_scan_head_ = log_.unres_head();
  loss_scan_largest_ = largest_acked_;
  loss_scan_threshold_ = threshold;
  loss_scan_reorder_ = reorder_threshold_;
  loss_scan_next_ = next_loss_time;
}

void SenderEndpoint::arm_pto() {
  if (bytes_in_flight_ <= 0) {
    const bool was_armed = pto_timer_.armed();
    pto_timer_.cancel();
    if (was_armed && timer_cb_) {
      timer_cb_(sim_.now(), LossTimerKind::kPto, LossTimerEvent::kCancelled, 0);
    }
    return;
  }
  Time interval = rtt_.pto_interval(profile_.max_ack_delay_assumed)
                  << std::min(pto_count_, 6);
  if (profile_.loss_detection == LossDetection::kRackTlp &&
      pto_count_ == 0 && rtt_.has_sample()) {
    // TLP (RFC 8985 §7): the first probe after silence fires at
    // 2*srtt + max_ack_delay rather than the full PTO, so a dropped
    // tail is repaired in roughly two round trips. Subsequent probes
    // fall back to the exponential PTO schedule.
    interval = static_cast<Time>(profile_.tlp_srtt_factor *
                                 static_cast<double>(rtt_.smoothed())) +
               profile_.max_ack_delay_assumed;
  }
  pto_timer_.rearm_in(interval);
  if (timer_cb_) {
    timer_cb_(sim_.now(), LossTimerKind::kPto, LossTimerEvent::kSet,
              sim_.now() + interval);
  }
}

void SenderEndpoint::on_pto() {
  ack_stash_valid_ = false;
  ++stats_.ptos_fired;
  ++pto_count_;
  if (timer_cb_) {
    timer_cb_(sim_.now(), LossTimerKind::kPto, LossTimerEvent::kExpired, 0);
  }
  if (pto_cb_) pto_cb_(sim_.now(), pto_count_);
  if (pto_count_ >= profile_.persistent_congestion_ptos) {
    declare_persistent_congestion();
  }
  send_one(/*is_probe=*/true);
  arm_pto();
}

void SenderEndpoint::declare_persistent_congestion() {
  const Time now = sim_.now();
  Bytes lost_bytes = 0;
  std::uint64_t largest_lost = 0;
  Time largest_lost_sent = 0;
  for (std::uint64_t pn = log_.base_pn(); pn < log_.next_pn(); ++pn) {
    if (log_.flags(pn) & (kSentAcked | kSentLost)) continue;
    log_.mark_lost(pn);
    const Bytes wire = log_.wire_size(pn);
    bytes_in_flight_ -= wire;
    lost_bytes += wire;
    pending_retx_bytes_ += profile_.mss;
    if (lost_cb_) lost_cb_(now, pn);
    largest_lost = pn;
    largest_lost_sent = log_.sent_time(pn);
  }
  if (lost_bytes == 0) return;
  ++stats_.persistent_congestion_events;
  cca::LossEvent ev;
  ev.now = now;
  ev.bytes_lost = lost_bytes;
  ev.bytes_in_flight = bytes_in_flight_;
  ev.largest_lost_pn = largest_lost;
  ev.largest_lost_sent_time = largest_lost_sent;
  ev.is_persistent_congestion = true;
  {
    QB_ATTRIB_SCOPE(kCcaOnLoss);
    cca_->on_loss(ev);
  }
  if (cwnd_cb_) cwnd_cb_(now, cca_->cwnd(), bytes_in_flight_);
  pto_count_ = 0;
}

std::optional<Time> SenderEndpoint::pacing_interval(Bytes wire, Bytes cwnd) {
  // CCA-provided rates (BBR) can change on any event, so they are
  // re-derived every call. Window pacing is a pure function of
  // (cwnd, srtt), which only move during ack/loss processing — cache the
  // derived interval so the send loop's per-packet re-evaluation skips
  // the divide chain.
  QB_ATTRIB_SCOPE(kSenderPacer);
  if (const auto r = cca_->pacing_rate(); r.has_value()) {
    return serialization_time(wire, *r);
  }
  if (!profile_.pace_window_ccas || !rtt_.has_sample()) return std::nullopt;
  const Time srtt = rtt_.smoothed();
  if (cwnd != pace_key_cwnd_ || srtt != pace_key_srtt_) {
    const double cwnd_bits = static_cast<double>(cwnd) * 8.0;
    const Rate rate =
        profile_.window_pacing_factor * cwnd_bits / time::to_sec(srtt);
    pace_interval_ = serialization_time(wire, rate);
    pace_key_cwnd_ = cwnd;
    pace_key_srtt_ = srtt;
  }
  return pace_interval_;
}

void SenderEndpoint::maybe_send() {
  if (!started_ || out_of_data()) return;
  if (profile_.send_quantum > 0) {
    // Batched send loop: wake only on quantum boundaries.
    if (!quantum_timer_.armed()) {
      quantum_timer_.rearm_in(profile_.send_quantum);
    }
    return;
  }
  do_send_loop();
}

void SenderEndpoint::do_send_loop() {
  QB_ATTRIB_SCOPE(kSenderSend);
  const Bytes wire = profile_.mss + profile_.header_overhead;
  for (;;) {
    if (out_of_data()) break;
    const Bytes cwnd = cca_->cwnd();
    if (bytes_in_flight_ + wire > cwnd) break;
    if (profile_.flow_control_window > 0 &&
        bytes_in_flight_ + wire > profile_.flow_control_window) {
      break;
    }
    if (const auto paced = pacing_interval(wire, cwnd); paced.has_value()) {
      if (next_send_time_ > sim_.now()) {
        if (profile_.send_quantum <= 0) {
          pacing_timer_.rearm(next_send_time_);
        }
        break;
      }
      const Time interval = *paced;
      const Time burst_allowance =
          interval * std::max(profile_.pacing_burst_packets - 1, 0);
      next_send_time_ =
          std::max(next_send_time_, sim_.now() - burst_allowance) + interval;
    }
    send_one(/*is_probe=*/false);
  }
}

void SenderEndpoint::send_one(bool is_probe) {
  const Time now = sim_.now();
  const Bytes wire = profile_.mss + profile_.header_overhead;

  const bool is_retx = is_probe || pending_retx_bytes_ > 0;
  if (pending_retx_bytes_ > 0) {
    pending_retx_bytes_ = std::max<Bytes>(pending_retx_bytes_ - profile_.mss, 0);
    ++stats_.retransmissions;
  } else if (is_probe) {
    ++stats_.retransmissions;
  } else {
    new_data_bytes_ += profile_.mss;
  }

  const std::uint64_t pn = log_.push(now, static_cast<std::uint32_t>(wire),
                                     is_retx, delivered_bytes_,
                                     delivered_time_);
  bytes_in_flight_ += wire;
  ++stats_.packets_sent;
  stats_.bytes_sent += wire;

  cca::SentPacketEvent ev;
  ev.now = now;
  ev.pn = pn;
  ev.size = wire;
  ev.bytes_in_flight = bytes_in_flight_;
  ev.is_retransmission = is_retx;
  {
    QB_ATTRIB_SCOPE(kCcaOnSent);
    cca_->on_packet_sent(ev);
  }
  if (sent_cb_) sent_cb_(now, pn, wire, is_retx);

  Packet p;
  p.kind = PacketKind::kData;
  p.flow = static_cast<std::int16_t>(flow_);
  p.size = wire;
  p.pn = pn;
  p.payload = profile_.mss;
  p.sent_time = now;

  if (profile_.egress_jitter > 0) {
    Time release = now + static_cast<Time>(
                             rng_.uniform() *
                             static_cast<double>(profile_.egress_jitter));
    if (!profile_.egress_reorder) {
      release = std::max(release, last_egress_release_);
    }
    last_egress_release_ = std::max(last_egress_release_, release);
    // Park the packet in a pooled slot: a Packet is too large for the
    // event callback's inline buffer, so capture only {this, slot}.
    std::uint32_t idx;
    if (!egress_free_.empty()) {
      idx = egress_free_.back();
      egress_free_.pop_back();
      egress_pool_[idx] = std::move(p);
    } else {
      idx = static_cast<std::uint32_t>(egress_pool_.size());
      egress_pool_.push_back(std::move(p));
    }
    sim_.schedule(release, [this, idx] {
      Packet pkt = std::move(egress_pool_[idx]);
      egress_free_.push_back(idx);
      network_->deliver(std::move(pkt));
    });
  } else {
    network_->deliver(std::move(p));
  }

  if (!pto_timer_.armed()) arm_pto();
}

} // namespace quicbench::transport
