#pragma once
// SentLog: the sender's packet scoreboard as a structure-of-arrays ring.
//
// Replaces the FifoVec<SentMeta> + std::set<uint64_t> pair the sender
// used through PR 4. The per-packet metadata is split into hot arrays
// (sent_time, wire_size, state flags — everything the per-ACK and
// loss-detection paths touch) and a cold array (delivery-rate sampling
// state, read once per ACK frame at most), so a BDP-sized window of
// in-flight packets spans a handful of cache lines instead of one
// 64-byte struct per packet.
//
// The old `unresolved_` rb-tree becomes an intrusive doubly-linked list
// threaded through two parallel arrays. Links are stored as packet
// numbers, not indices, so they survive ring compaction; membership is
// a flag bit. This gives O(1) insert at the tail (the common case: new
// gaps have the largest pns), O(1) unlink on ack/spurious-ack, an O(1)
// earliest-unresolved cursor (the list head), and ordered ascending
// iteration for loss detection — with no rb-tree nodes to allocate,
// rebalance, or miss cache on.
//
// The unresolved list holds only LIVE gaps (sent, neither acked nor
// lost). Lost-marked packets move to `lost_`, a sorted vector of pns
// kept for the spurious-ack grace window: they no longer ride along in
// every ACK-frame merge walk and loss scan (under loss-heavy CCAs like
// BBR, thousands of graced lost entries used to dominate both), and the
// spurious-ack check becomes a binary search per ACK segment. Losses
// are declared in ascending pn order on every path (the loss scan takes
// a prefix of the ascending live list; persistent congestion drains it
// entirely, and later flights use strictly larger pns), so the append
// is O(1) with a rare sorted-insert fallback.
//
// Contiguous ACK segments resolve through range operations
// (`ack_clean_range`, `link_gap_run`): tight loops over the SoA arrays
// that the compiler can vectorize, replacing per-pn lambda dispatch.
//
// Storage follows util::FifoVec's compaction policy: pop_front advances
// a head index; the buffer is recycled outright when the log drains and
// the dead prefix is erased once it dominates, so total compaction work
// is O(packets pushed) regardless of how many ACK frames arrive
// (ScoreboardCounters make that testable).

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/simd.h"
#include "util/units.h"

namespace quicbench::transport {

// Per-packet state bits (hot array).
enum : std::uint8_t {
  kSentAcked = 1u << 0,
  kSentLost = 1u << 1,
  kSentRetx = 1u << 2,
  kSentUnres = 1u << 3,  // linked into the unresolved list
};

// Read at most once per ACK frame (delivery-rate sampling for the
// largest newly acked pn), so kept out of the hot arrays.
struct SentCold {
  Bytes delivered_at_send = 0;
  Time delivered_time_at_send = 0;
};

// Work counters for the amortization tests: total compaction work must
// stay O(packets pushed), and unresolved-list maintenance O(1) amortized
// per insert, independent of how many ACK frames arrive.
struct ScoreboardCounters {
  std::uint64_t compact_calls = 0;
  std::uint64_t compact_pops = 0;      // entries retired off the front
  std::uint64_t storage_moves = 0;     // entries shifted by prefix erase
  std::uint64_t link_inserts = 0;      // unresolved-list insertions
  std::uint64_t link_walk_steps = 0;   // backward steps to find the slot
};

class SentLog {
 public:
  static constexpr std::uint64_t kNone = ~std::uint64_t{0};

  void reserve(std::size_t n) {
    sent_time_.reserve(n);
    wire_size_.reserve(n);
    flags_.reserve(n);
    next_.reserve(n);
    prev_.reserve(n);
    cold_.reserve(n);
  }

  bool empty() const { return head_ == flags_.size(); }
  std::uint64_t base_pn() const { return base_pn_; }
  std::uint64_t next_pn() const { return next_pn_; }
  bool contains(std::uint64_t pn) const {
    return pn >= base_pn_ && pn < next_pn_;
  }

  // Appends a packet and returns its pn.
  std::uint64_t push(Time sent_time, std::uint32_t wire_size, bool is_retx,
                     Bytes delivered_at_send, Time delivered_time_at_send) {
    sent_time_.push_back(sent_time);
    wire_size_.push_back(wire_size);
    flags_.push_back(is_retx ? kSentRetx : 0);
    next_.push_back(kNone);
    prev_.push_back(kNone);
    cold_.push_back({delivered_at_send, delivered_time_at_send});
    return next_pn_++;
  }

  // Field access by pn. Callers must check contains(pn) first.
  std::uint8_t flags(std::uint64_t pn) const { return flags_[idx(pn)]; }
  void add_flags(std::uint64_t pn, std::uint8_t bits) {
    flags_[idx(pn)] |= bits;
  }
  Time sent_time(std::uint64_t pn) const { return sent_time_[idx(pn)]; }
  std::uint32_t wire_size(std::uint64_t pn) const {
    return wire_size_[idx(pn)];
  }
  const SentCold& cold(std::uint64_t pn) const { return cold_[idx(pn)]; }

  // Slot-resolved access for the per-ACK and loss-scan loops: resolving
  // the ring slot once per pn lets the compiler keep the array bases in
  // registers (the uint8_t flag stores alias everything, so interleaved
  // by-pn calls would reload them between fields).
  std::size_t slot(std::uint64_t pn) const { return idx(pn); }
  std::uint8_t flags_at(std::size_t s) const { return flags_[s]; }
  void add_flags_at(std::size_t s, std::uint8_t bits) { flags_[s] |= bits; }
  Time sent_time_at(std::size_t s) const { return sent_time_[s]; }
  std::uint32_t wire_size_at(std::size_t s) const { return wire_size_[s]; }
  std::uint64_t next_at(std::size_t s) const { return next_[s]; }

  // --- range operations (batched ACK processing) ---

  // Bulk-acks the in-log pn run [first, last] and returns its summed
  // wire bytes. Caller guarantees every pn in the run is clean: sent but
  // neither acked, lost, nor linked as unresolved (true for any segment
  // above the previous ack frontier unless persistent congestion marked
  // packets there — the caller falls back to the scalar path then).
  // Split into two passes over the SoA arrays — a u32 byte sum and a
  // flag OR-fill, both explicitly vectorized (util::simd; integer
  // reductions are exact under any association, so the result is
  // bit-identical to the scalar loop).
  Bytes ack_clean_range(std::uint64_t first, std::uint64_t last) {
    const std::size_t a = idx(first);
    const std::size_t n = idx(last) - a + 1;
    assert(!(util::simd::or_u8(flags_.data() + a, n) &
             (kSentAcked | kSentLost | kSentUnres)));
    const Bytes sum =
        static_cast<Bytes>(util::simd::sum_u32(wire_size_.data() + a, n));
    util::simd::or_assign_u8(flags_.data() + a, n, kSentAcked);
    return sum;
  }

  // Bulk gap-noting for the in-log pn run [first, last]: links every
  // live pn as unresolved. The run sits above the previous ack frontier,
  // so every linkable pn exceeds the current list tail and inserts are
  // pure tail appends; persistent-congestion leftovers carry kSentLost
  // and are skipped, exactly like the scalar note_gap path.
  void link_gap_run(std::uint64_t first, std::uint64_t last) {
    const std::size_t a = idx(first);
    const std::size_t n = idx(last) - a + 1;
    if (!(util::simd::or_u8(flags_.data() + a, n) &
          (kSentAcked | kSentLost))) {
      // Whole run live: every pn links, and because links are stored as
      // pns they are affine in the slot index — a pure vector fill plus
      // O(1) splice onto the list tail. Produces exactly the state the
      // scalar loop below would.
      assert(!(util::simd::or_u8(flags_.data() + a, n) & kSentUnres));
      assert(unres_tail_ == kNone || unres_tail_ < first);
      counters_.link_inserts += n;
      util::simd::or_assign_u8(flags_.data() + a, n, kSentUnres);
      util::simd::fill_affine_u64(next_.data() + a, n, first + 1);
      util::simd::fill_affine_u64(prev_.data() + a, n, first - 1);
      next_[a + n - 1] = kNone;
      prev_[a] = unres_tail_;
      if (unres_tail_ == kNone) {
        unres_head_ = first;
      } else {
        next_[idx(unres_tail_)] = first;
      }
      unres_tail_ = last;
      return;
    }
    for (std::uint64_t pn = first; pn <= last; ++pn) {
      const std::size_t i = idx(pn);
      const std::uint8_t f = flags_[i];
      if (f & (kSentAcked | kSentLost)) continue;
      assert(!(f & kSentUnres));
      assert(unres_tail_ == kNone || unres_tail_ < pn);
      ++counters_.link_inserts;
      flags_[i] = f | kSentUnres;
      next_[i] = kNone;
      prev_[i] = unres_tail_;
      if (unres_tail_ == kNone) {
        unres_head_ = pn;
      } else {
        next_[idx(unres_tail_)] = pn;
      }
      unres_tail_ = pn;
    }
  }

  // --- lost set (outstanding lost-marked pns, ascending) ---

  // Declares pn lost: unlinks it from the live unresolved list and
  // parks it in the lost set for the spurious-ack grace window.
  void mark_lost(std::uint64_t pn) {
    const std::size_t i = idx(pn);
    assert(!(flags_[i] & (kSentAcked | kSentLost)));
    if (flags_[i] & kSentUnres) unlink_unresolved(pn);
    flags_[idx(pn)] |= kSentLost;
    if (lost_.empty() || lost_.back() < pn) {
      lost_.push_back(pn);
    } else {
      // Persistent congestion can interleave new losses below earlier
      // ones; rare enough that a sorted insert is fine.
      lost_.insert(
          std::upper_bound(lost_.begin() +
                               static_cast<std::ptrdiff_t>(lost_head_),
                           lost_.end(), pn),
          pn);
    }
  }

  // Records a late ack for a lost-marked pn (spurious loss): the pn
  // gains kSentAcked and leaves the lost set, so neither ACK merges nor
  // compaction grace checks ever revisit it.
  void note_spurious_ack(std::uint64_t pn) {
    assert((flags(pn) & (kSentAcked | kSentLost)) == kSentLost);
    add_flags(pn, kSentAcked);
    const auto it = std::lower_bound(
        lost_.begin() + static_cast<std::ptrdiff_t>(lost_head_), lost_.end(),
        pn);
    assert(it != lost_.end() && *it == pn);
    lost_.erase(it);
  }

  bool lost_empty() const { return lost_head_ == lost_.size(); }
  std::size_t lost_size() const { return lost_.size() - lost_head_; }
  // i-th outstanding lost pn (ascending). Stable under note_spurious_ack
  // of the element at i: the successor slides into its place.
  std::uint64_t lost_at(std::size_t i) const { return lost_[lost_head_ + i]; }
  // Largest outstanding lost pn; callers must check lost_empty() first.
  std::uint64_t max_lost_pn() const { return lost_.back(); }
  // Index (for lost_at) of the first outstanding lost pn >= pn.
  std::size_t lost_lower_bound(std::uint64_t pn) const {
    const auto begin = lost_.begin() + static_cast<std::ptrdiff_t>(lost_head_);
    return static_cast<std::size_t>(
        std::lower_bound(begin, lost_.end(), pn) - begin);
  }
  // Whether any outstanding lost pn falls inside [first, last].
  bool lost_intersects(std::uint64_t first, std::uint64_t last) const {
    const std::size_t i = lost_lower_bound(first);
    return i < lost_size() && lost_[lost_head_ + i] <= last;
  }

  // --- unresolved list (live gaps only, ascending pn order) ---

  std::uint64_t unres_head() const { return unres_head_; }
  std::uint64_t unres_next(std::uint64_t pn) const { return next_[idx(pn)]; }

  // Sorted insert; no-op if pn is already linked. Walks backward from
  // the tail, which is O(1) when pn is the new largest unresolved (the
  // common case: fresh ACK gaps have ascending pns).
  void link_unresolved(std::uint64_t pn) {
    const std::size_t i = idx(pn);
    if (flags_[i] & kSentUnres) return;
    flags_[i] |= kSentUnres;
    ++counters_.link_inserts;
    std::uint64_t after = unres_tail_;
    while (after != kNone && after > pn) {
      after = prev_[idx(after)];
      ++counters_.link_walk_steps;
    }
    const std::uint64_t before =
        after == kNone ? unres_head_ : next_[idx(after)];
    next_[i] = before;
    prev_[i] = after;
    if (after == kNone) {
      unres_head_ = pn;
    } else {
      next_[idx(after)] = pn;
    }
    if (before == kNone) {
      unres_tail_ = pn;
    } else {
      prev_[idx(before)] = pn;
    }
  }

  // O(1) unlink; no-op if pn is out of the log or not linked (matches
  // std::set::erase on an absent key).
  void unlink_unresolved(std::uint64_t pn) {
    if (!contains(pn)) return;
    const std::size_t i = idx(pn);
    if (!(flags_[i] & kSentUnres)) return;
    flags_[i] &= static_cast<std::uint8_t>(~kSentUnres);
    const std::uint64_t p = prev_[i];
    const std::uint64_t n = next_[i];
    if (p == kNone) {
      unres_head_ = n;
    } else {
      next_[idx(p)] = n;
    }
    if (n == kNone) {
      unres_tail_ = p;
    } else {
      prev_[idx(n)] = p;
    }
  }

  // Retires the resolved front of the ring: acked packets, and
  // lost-marked packets once the spurious-ack grace period has passed.
  void compact(Time now, Time grace) {
    ++counters_.compact_calls;
    while (!empty()) {
      const std::uint8_t f = flags_[head_];
      if (f & kSentAcked) {
        pop_front();
      } else if ((f & kSentLost) && sent_time_[head_] + grace < now) {
        pop_front();
      } else {
        break;
      }
    }
    // Retire lost-set entries that fell off the ring (graced lost pops
    // above; spurious-acked pns were erased at ack time).
    while (lost_head_ < lost_.size() && lost_[lost_head_] < base_pn_) {
      ++lost_head_;
    }
    if (lost_head_ == lost_.size()) {
      lost_.clear();
      lost_head_ = 0;
    } else if (lost_head_ >= kCompactThreshold &&
               lost_head_ >= lost_.size() - lost_head_) {
      lost_.erase(lost_.begin(),
                  lost_.begin() + static_cast<std::ptrdiff_t>(lost_head_));
      lost_head_ = 0;
    }
    if (head_ == flags_.size()) {
      // Capacity retained: the common drain-to-empty case.
      sent_time_.clear();
      wire_size_.clear();
      flags_.clear();
      next_.clear();
      prev_.clear();
      cold_.clear();
      head_ = 0;
    } else if (head_ >= kCompactThreshold && head_ >= flags_.size() - head_) {
      // Dead prefix at least as large as the live suffix: compact.
      counters_.storage_moves += flags_.size() - head_;
      const auto n = static_cast<std::ptrdiff_t>(head_);
      sent_time_.erase(sent_time_.begin(), sent_time_.begin() + n);
      wire_size_.erase(wire_size_.begin(), wire_size_.begin() + n);
      flags_.erase(flags_.begin(), flags_.begin() + n);
      next_.erase(next_.begin(), next_.begin() + n);
      prev_.erase(prev_.begin(), prev_.begin() + n);
      cold_.erase(cold_.begin(), cold_.begin() + n);
      head_ = 0;
    }
  }

  const ScoreboardCounters& counters() const { return counters_; }

 private:
  static constexpr std::size_t kCompactThreshold = 64;

  std::size_t idx(std::uint64_t pn) const {
    assert(contains(pn));
    return head_ + static_cast<std::size_t>(pn - base_pn_);
  }

  void pop_front() {
    assert(!(flags_[head_] & kSentUnres));
    ++head_;
    ++base_pn_;
    ++counters_.compact_pops;
  }

  // Hot: touched for every pn an ACK frame or loss scan visits.
  std::vector<Time> sent_time_;
  std::vector<std::uint32_t> wire_size_;
  std::vector<std::uint8_t> flags_;
  // Unresolved-list links, keyed and valued by pn (compaction-stable).
  std::vector<std::uint64_t> next_;
  std::vector<std::uint64_t> prev_;
  // Cold: delivery-rate sampling state.
  std::vector<SentCold> cold_;

  std::size_t head_ = 0;
  std::uint64_t base_pn_ = 0;
  std::uint64_t next_pn_ = 0;
  std::uint64_t unres_head_ = kNone;
  std::uint64_t unres_tail_ = kNone;

  // Outstanding lost-marked pns awaiting the spurious-ack grace window,
  // ascending; lost_head_ is the retired prefix (same compaction policy
  // as the ring).
  std::vector<std::uint64_t> lost_;
  std::size_t lost_head_ = 0;

  ScoreboardCounters counters_;
};

} // namespace quicbench::transport
